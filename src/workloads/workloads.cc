#include "workloads/workloads.h"

#include <cassert>

namespace lfi::workloads {

namespace {

// Small assembly-text builder.
class Asm {
 public:
  // Appends one line.
  Asm& L(const std::string& line) {
    out_ += line;
    out_ += '\n';
    return *this;
  }
  // Appends a label definition.
  Asm& Lbl(const std::string& name) { return L(name + ":"); }
  // mov reg, #imm64 via movz/movk.
  Asm& Imm(const std::string& reg, uint64_t v) {
    L("movz " + reg + ", #" + std::to_string(v & 0xffff));
    if ((v >> 16) & 0xffff) {
      L("movk " + reg + ", #" + std::to_string((v >> 16) & 0xffff) +
        ", lsl #16");
    }
    if ((v >> 32) & 0xffff) {
      L("movk " + reg + ", #" + std::to_string((v >> 32) & 0xffff) +
        ", lsl #32");
    }
    if ((v >> 48) & 0xffff) {
      L("movk " + reg + ", #" + std::to_string((v >> 48) & 0xffff) +
        ", lsl #48");
    }
    return *this;
  }
  // Loads the address of `sym` into reg.
  Asm& Addr(const std::string& reg, const std::string& sym) {
    L("adrp " + reg + ", " + sym);
    L("add " + reg + ", " + reg + ", :lo12:" + sym);
    return *this;
  }
  // Exit with the low 7 bits of `reg` as status.
  Asm& Exit(const std::string& reg) {
    Imm("x9", 127);
    L("and x0, " + reg + ", x9");
    L("rtcall #0");
    return *this;
  }
  // Standard LCG step on x20 (full 64-bit).
  Asm& Lcg() {
    return L("madd x20, x20, x16, x17");  // x16/x17 hold A/C constants
  }
  Asm& LcgSetup() {
    Imm("x16", 6364136223846793005ULL);
    Imm("x17", 1442695040888963407ULL);
    Imm("x20", 0x243f6a8885a308d3ULL);  // seed
    return *this;
  }
  std::string str() const { return out_; }

 private:
  std::string out_;
};

std::string Bss(const std::string& name, uint64_t bytes) {
  return ".bss\n" + name + ":\n.zero " + std::to_string(bytes) + "\n.text\n";
}

// ---- 502.gcc: branchy integer code, jump tables, many small function
// calls, stack traffic. ----
std::string GenGcc(uint64_t scale) {
  Asm a;
  const uint64_t iters = scale / 48;
  a.L(".globl _start").L(".text").Lbl("_start");
  a.LcgSetup();
  a.Imm("x19", iters);
  a.Addr("x14", "globals");
  a.Addr("x15", "jt");
  // PIC-style jump-table rebase: table entries are sandbox-relative
  // offsets; derive the load base from a known anchor so the code is also
  // correct when run unsandboxed (the native baseline).
  a.L("adr x7, case0");
  a.L("ldr x13, [x15]");     // jt[0] == offset of case0
  a.L("sub x7, x7, x13");    // image base
  a.L("mov x13, #0");        // checksum
  a.Lbl("outer");
  a.Lcg();
  a.L("lsr x9, x20, #17");
  a.L("mov x10, #7").L("and x9, x9, x10");
  a.L("ldr x11, [x15, x9, lsl #3]");
  a.L("add x11, x7, x11");
  a.L("br x11");
  for (int c = 0; c < 8; ++c) {
    a.Lbl("case" + std::to_string(c));
    a.L("bl helper" + std::to_string(c % 4));
    a.L("add x13, x13, x0");
    a.L("b join");
  }
  a.Lbl("join");
  a.L("subs x19, x19, #1");
  a.L("b.ne outer");
  a.Exit("x13");
  // Four small helpers with frames and struct-field traffic (several
  // offsets from one base pointer - the redundant-guard-elimination
  // pattern of Figure 2).
  for (int h = 0; h < 4; ++h) {
    a.Lbl("helper" + std::to_string(h));
    a.L("stp x29, x30, [sp, #-32]!");
    a.L("str x19, [sp, #16]");
    a.L("lsr x9, x20, #5");
    a.L("movz x10, #2047").L("and x9, x9, x10");
    a.L("add x9, x14, x9, lsl #5");   // pointer to a 32-byte record
    a.L("ldr x0, [x9]");
    a.L("ldr x1, [x9, #8]");
    a.L("add x0, x0, x1");
    a.L("str x0, [x9, #8]");
    a.L("str x19, [x9, #16]");
    a.L("add x0, x0, #" + std::to_string(h + 1));
    a.L("str x0, [x9, #24]");
    a.L("eor x0, x0, x20");
    a.L("ldr x19, [sp, #16]");
    a.L("ldp x29, x30, [sp], #32");
    a.L("ret");
  }
  a.L(".rodata").Lbl("jt");
  a.L(".quad case0, case1, case2, case3, case4, case5, case6, case7");
  a.L(Bss("globals", 64 * 1024));
  return a.str();
}

// ---- 505.mcf: pointer chasing over a large, sparse working set. ----
std::string GenMcf(uint64_t scale) {
  Asm a;
  // K cells spread over a 64MiB arena: deep cache misses and TLB pressure.
  const uint64_t kCells = 1 << 16;
  const uint64_t kMask = (1 << 23) - 1;  // arena indices (8M cells of 8B)
  const uint64_t kPerm = 2654435761ULL;  // odd multiplier: a permutation
  const uint64_t laps = scale / (3 * kCells) + 1;
  a.L(".globl _start").L(".text").Lbl("_start");
  a.Addr("x14", "arena");
  a.Imm("x15", kPerm);
  a.Imm("x12", kMask);
  a.Imm("x19", kCells);
  a.L("mov x9, #0");  // i
  // Init: cell at pos(i) points to pos(i+1)*8.
  a.Lbl("init");
  a.L("mul x10, x9, x15").L("and x10, x10, x12");   // pos(i)
  a.L("add x11, x9, #1");
  a.L("mul x11, x11, x15").L("and x11, x11, x12");  // pos(i+1)
  a.L("lsl x11, x11, #3");
  a.L("str x11, [x14, x10, lsl #3]");
  a.L("add x9, x9, #1");
  a.L("cmp x9, x19");
  a.L("b.lo init");
  // Close the ring: pos(K-1) -> pos(0) (pos(0) == 0).
  a.L("sub x9, x19, #1");
  a.L("mul x10, x9, x15").L("and x10, x10, x12");
  a.L("str xzr, [x14, x10, lsl #3]");
  // Chase laps * K steps.
  a.Imm("x19", laps * kCells);
  a.L("mov x9, #0");   // current byte offset
  a.L("mov x13, #0");  // checksum
  a.Lbl("chase");
  a.L("ldr x9, [x14, x9]");  // becomes a guarded base-register access
  a.L("add x13, x13, x9");
  a.L("subs x19, x19, #1");
  a.L("b.ne chase");
  a.Exit("x13");
  a.L(Bss("arena", uint64_t{64} << 20));
  return a.str();
}

// ---- 508.namd: dense FP, fmadd chains over medium arrays. ----
std::string GenNamd(uint64_t scale) {
  Asm a;
  const uint64_t kDoubles = 32 * 1024;  // 256KiB per array
  const uint64_t passes = scale / (kDoubles * 3) + 1;
  a.L(".globl _start").L(".text").Lbl("_start");
  a.Addr("x14", "va").Addr("x15", "vb").Addr("x13", "vc");
  // Seed the arrays with small integers via stores.
  a.Imm("x19", kDoubles);
  a.L("mov x9, #0");
  a.Lbl("seed");
  a.L("scvtf d0, x9");
  a.L("str d0, [x14, x9, lsl #3]");
  a.L("str d0, [x15, x9, lsl #3]");
  a.L("add x9, x9, #1");
  a.L("cmp x9, x19");
  a.L("b.lo seed");
  a.Imm("x19", passes);
  a.L("fmov d4, xzr");
  a.Lbl("pass");
  a.L("mov x9, #0");
  a.Lbl("inner");
  // Unrolled 2x: load, fmadd chain, occasional store.
  a.L("ldr d0, [x14, x9, lsl #3]");
  a.L("ldr d1, [x15, x9, lsl #3]");
  a.L("fmadd d4, d0, d1, d4");
  a.L("add x10, x9, #1");
  a.L("ldr d2, [x14, x10, lsl #3]");
  a.L("ldr d3, [x15, x10, lsl #3]");
  a.L("fmadd d4, d2, d3, d4");
  a.L("fadd d5, d0, d2");
  a.L("str d5, [x13, x9, lsl #3]");
  a.L("add x9, x9, #2");
  a.Imm("x11", kDoubles - 2);
  a.L("cmp x9, x11");
  a.L("b.lo inner");
  a.L("subs x19, x19, #1");
  a.L("b.ne pass");
  a.L("fcvtzs x13, d4");
  a.Exit("x13");
  a.L(Bss("va", kDoubles * 8) + Bss("vb", kDoubles * 8) +
      Bss("vc", kDoubles * 8));
  return a.str();
}

// ---- 510.parest: sparse-matrix-style indexed FP loads. ----
std::string GenParest(uint64_t scale) {
  Asm a;
  const uint64_t kIdx = 64 * 1024;
  const uint64_t kData = 256 * 1024;  // doubles: 2MiB
  const uint64_t laps = scale / (kIdx * 6) + 1;
  a.L(".globl _start").L(".text").Lbl("_start");
  a.LcgSetup();
  a.Addr("x14", "idx").Addr("x15", "vals");
  a.Imm("x19", kIdx);
  a.L("mov x9, #0");
  a.Lbl("init");
  a.Lcg();
  a.L("lsr x10, x20, #13");
  a.Imm("x11", kData - 1);
  a.L("and x10, x10, x11");
  a.L("str w10, [x14, x9, lsl #2]");
  a.L("scvtf d0, x10");
  a.L("str d0, [x15, x10, lsl #3]");
  a.L("add x9, x9, #1");
  a.L("cmp x9, x19");
  a.L("b.lo init");
  a.Imm("x19", laps);
  a.L("fmov d4, xzr");
  a.Lbl("lap");
  a.L("mov x9, #0");
  a.Imm("x12", kIdx);
  a.Lbl("gather");
  // Unrolled 2x; the second element's index feeds the loop induction
  // (bit 63 is always zero, so the value is unchanged, but the dependence
  // is real) - sparse-matrix row walks behave exactly like this.
  a.L("ldr w10, [x14, x9, lsl #2]");       // index load
  a.L("ldr d0, [x15, w10, uxtw #3]");      // indexed data load
  a.L("fmadd d4, d0, d0, d4");
  a.L("add x11, x9, #1");
  a.L("ldr w10, [x14, x11, lsl #2]");
  a.L("ldr d1, [x15, w10, uxtw #3]");
  a.L("fmadd d4, d1, d1, d4");
  a.L("add x9, x9, #2");
  a.L("lsr x10, x10, #63");
  a.L("add x9, x9, x10");
  a.L("cmp x9, x12");
  a.L("b.lo gather");
  a.L("subs x19, x19, #1");
  a.L("b.ne lap");
  a.L("fcvtzs x13, d4");
  a.Exit("x13");
  a.L(Bss("idx", kIdx * 4) + Bss("vals", kData * 8));
  return a.str();
}

// ---- 511.povray: FP with divides/sqrts, calls, data-dependent branches.
std::string GenPovray(uint64_t scale) {
  Asm a;
  const uint64_t iters = scale / 40;
  a.L(".globl _start").L(".text").Lbl("_start");
  a.LcgSetup();
  a.Imm("x19", iters);
  a.L("fmov d6, xzr");
  a.Imm("x9", 3);
  a.L("scvtf d7, x9");  // 3.0
  a.Lbl("ray");
  a.Lcg();
  a.L("lsr x9, x20, #40");
  a.L("scvtf d0, x9");
  a.L("fadd d1, d0, d7");
  a.L("fdiv d2, d0, d1");     // divide every iteration
  a.L("fmadd d6, d2, d2, d6");
  a.L("tbz x20, #13, noroot");
  a.L("fsqrt d3, d1");
  a.L("fadd d6, d6, d3");
  a.Lbl("noroot");
  a.L("bl shade");
  a.L("subs x19, x19, #1");
  a.L("b.ne ray");
  a.L("fcvtzs x13, d6");
  a.Exit("x13");
  a.Lbl("shade");
  a.L("stp x29, x30, [sp, #-16]!");
  a.L("fmul d4, d2, d2");
  a.L("fadd d5, d4, d2");
  a.L("fcmp d5, d7");
  a.L("b.lt dim");
  a.L("fsub d5, d5, d7");
  a.Lbl("dim");
  a.L("fadd d6, d6, d5");
  a.L("ldp x29, x30, [sp], #16");
  a.L("ret");
  return a.str();
}

// ---- 519.lbm: streaming FP stencil over large arrays. ----
std::string GenLbm(uint64_t scale) {
  Asm a;
  const uint64_t kDoubles = 256 * 1024;  // 2MiB per array
  const uint64_t passes = scale / (kDoubles * 8) + 1;
  a.L(".globl _start").L(".text").Lbl("_start");
  a.Addr("x14", "src").Addr("x15", "dst");
  a.Imm("x19", kDoubles);
  a.L("mov x9, #0");
  a.Lbl("seed");
  a.L("scvtf d0, x9");
  a.L("str d0, [x14, x9, lsl #3]");
  a.L("add x9, x9, #1");
  a.L("cmp x9, x19");
  a.L("b.lo seed");
  a.Imm("x19", passes);
  a.Lbl("pass");
  a.L("mov x9, #1");
  a.Imm("x12", kDoubles - 1);
  a.Lbl("stencil");
  a.L("sub x10, x9, #1");
  a.L("add x11, x9, #1");
  a.L("ldr d0, [x14, x9, lsl #3]");
  a.L("ldr d1, [x14, x10, lsl #3]");
  a.L("ldr d2, [x14, x11, lsl #3]");
  a.L("fadd d3, d1, d2");
  a.L("fmadd d4, d0, d0, d3");
  a.L("str d4, [x15, x9, lsl #3]");
  a.L("add x9, x9, #1");
  a.L("cmp x9, x12");
  a.L("b.lo stencil");
  // Swap src/dst.
  a.L("mov x10, x14").L("mov x14, x15").L("mov x15, x10");
  a.L("subs x19, x19, #1");
  a.L("b.ne pass");
  a.L("ldr d0, [x14, #8]");
  a.L("fcvtzs x13, d0");
  a.Exit("x13");
  a.L(Bss("src", kDoubles * 8) + Bss("dst", kDoubles * 8));
  return a.str();
}

// ---- 520.omnetpp: discrete-event-style pointer+store traffic. ----
std::string GenOmnetpp(uint64_t scale) {
  Asm a;
  const uint64_t kEvents = 1 << 17;  // 128K live events...
  const uint64_t kSpread = 1 << 21;  // ...spread over 64MiB of arena
  const uint64_t steps = scale / 12;
  a.L(".globl _start").L(".text").Lbl("_start");
  a.LcgSetup();
  a.Addr("x14", "events");
  // Init ring: event i -> (i * 40503) & mask, payload i.
  a.Imm("x19", kEvents);
  a.Imm("x15", 40503);
  a.Imm("x12", kSpread - 1);
  a.L("mov x9, #0");
  a.Lbl("init");
  a.L("add x10, x9, #1");
  a.L("mul x10, x10, x15").L("and x10, x10, x12");
  a.L("lsl x11, x10, #5");
  a.L("mul x10, x9, x15").L("and x10, x10, x12");
  a.L("lsl x10, x10, #5");
  a.L("add x13, x14, x10");
  a.L("str x11, [x13]");       // next offset
  a.L("str x9, [x13, #8]");    // payload
  a.L("add x9, x9, #1");
  a.L("cmp x9, x19");
  a.L("b.lo init");
  a.Imm("x19", steps);
  a.L("mov x9, #0");   // current event offset
  a.L("mov x13, #0");  // checksum
  a.Lbl("run");
  a.L("add x10, x14, x9");
  a.L("ldr x9, [x10]");        // chase
  a.L("ldr x11, [x10, #8]");   // payload (same base: RGE candidates)
  a.L("add x11, x11, #1");
  a.L("str x11, [x10, #8]");
  a.L("ldr x15, [x10, #16]");  // timestamp field
  a.L("add x15, x15, x11");
  a.L("str x15, [x10, #24]");
  a.L("add x13, x13, x11");
  a.L("tbz x11, #4, nobump");
  a.L("add x13, x13, #3");
  a.Lbl("nobump");
  a.L("subs x19, x19, #1");
  a.L("b.ne run");
  a.Exit("x13");
  a.L(Bss("events", kSpread * 32));
  return a.str();
}

// ---- 523.xalancbmk: byte scanning, virtual dispatch, branchy. ----
std::string GenXalancbmk(uint64_t scale) {
  Asm a;
  const uint64_t kText = 1 << 20;  // 1MiB document
  const uint64_t laps = scale / (kText / 4) + 1;
  a.L(".globl _start").L(".text").Lbl("_start");
  a.LcgSetup();
  a.Addr("x14", "doc").Addr("x15", "vtable");
  // Fill the document with pseudo-text.
  a.Imm("x19", kText / 8);
  a.L("mov x9, #0");
  a.Lbl("fill");
  a.Lcg();
  a.L("str x20, [x14, x9, lsl #3]");
  a.L("add x9, x9, #1");
  a.L("cmp x9, x19");
  a.L("b.lo fill");
  // Vtable rebase anchor (see the jump-table comment in GenGcc).
  a.L("adr x8, method0");
  a.L("ldr x13, [x15]");
  a.L("sub x8, x8, x13");
  a.Imm("x19", laps);
  a.L("mov x13, #0");
  a.Lbl("lap");
  a.L("mov x9, #0");
  a.Imm("x12", kText / 4);
  a.Lbl("scan");
  a.L("ldrb w10, [x14, x9]");     // byte load
  a.L("add x13, x13, x10");
  a.L("tbz w10, #5, plain");      // data-dependent branch
  a.L("add x13, x13, #2");
  a.Lbl("plain");
  // Virtual dispatch every 16 bytes (vtable holds image-relative
  // offsets, rebased off an anchor like position-independent code).
  a.L("mov x11, #15").L("and x11, x9, x11");
  a.L("cbnz x11, nexttag");
  a.L("mov x11, #3").L("and x11, x10, x11");
  a.L("ldr x0, [x15, x11, lsl #3]");
  a.L("add x0, x8, x0");
  a.L("blr x0");
  a.Lbl("nexttag");
  a.L("add x9, x9, #4");
  a.L("cmp x9, x12");
  a.L("b.lo scan");
  a.L("subs x19, x19, #1");
  a.L("b.ne lap");
  a.Exit("x13");
  for (int m = 0; m < 4; ++m) {
    a.Lbl("method" + std::to_string(m));
    a.L("add x13, x13, #" + std::to_string(m + 1));
    a.L("ret");
  }
  a.L(".rodata").Lbl("vtable");
  a.L(".quad method0, method1, method2, method3");
  a.L(Bss("doc", kText));
  return a.str();
}

// ---- 525.x264: SIMD integer block processing. ----
std::string GenX264(uint64_t scale) {
  Asm a;
  // Real x264 tiles its block work to stay cache-resident; keep the
  // working set inside L2 so the kernel is bandwidth- not miss-bound.
  const uint64_t kFrame = 1 << 18;  // 256KiB frame
  const uint64_t laps = scale / (kFrame / 16 * 6) + 1;
  a.L(".globl _start").L(".text").Lbl("_start");
  a.LcgSetup();
  a.Addr("x14", "frame").Addr("x15", "ref");
  a.Imm("x19", kFrame / 8);
  a.L("mov x9, #0");
  a.Lbl("fill");
  a.Lcg();
  a.L("str x20, [x14, x9, lsl #3]");
  a.L("str x20, [x15, x9, lsl #3]");
  a.L("add x9, x9, #1");
  a.L("cmp x9, x19");
  a.L("b.lo fill");
  a.Imm("x19", laps);
  a.Lbl("lap");
  a.L("mov x9, #0");
  a.Imm("x12", kFrame - 64);
  a.Lbl("block");
  // 16-byte SIMD block ops: load, add, store (motion-comp-like).
  a.L("add x10, x14, x9");
  a.L("add x11, x15, x9");
  a.L("ldr q0, [x10]");
  a.L("ldr q1, [x11]");
  a.L("add v2.4s, v0.4s, v1.4s");
  a.L("str q2, [x10]");
  a.L("ldr q3, [x10, #16]");
  a.L("ldr q4, [x11, #16]");
  a.L("add v5.4s, v3.4s, v4.4s");
  a.L("str q5, [x10, #16]");
  a.L("add x9, x9, #32");
  a.L("cmp x9, x12");
  a.L("b.lo block");
  a.L("subs x19, x19, #1");
  a.L("b.ne lap");
  a.L("ldr x13, [x14, #128]");
  a.Exit("x13");
  a.L(Bss("frame", kFrame) + Bss("ref", kFrame));
  return a.str();
}

// ---- 531.deepsjeng: recursive search, bit manipulation, stack-heavy.
std::string GenDeepsjeng(uint64_t scale) {
  Asm a;
  // Each node is ~26 instructions; 2^depth nodes.
  int depth = 1;
  while ((uint64_t{1} << (depth + 1)) * 26 < scale && depth < 24) ++depth;
  a.L(".globl _start").L(".text").Lbl("_start");
  a.LcgSetup();
  a.Addr("x14", "ttable");
  a.L("mov x0, #" + std::to_string(depth));
  a.L("bl search");
  a.L("mov x13, x0");
  a.Exit("x13");
  a.Lbl("search");
  a.L("stp x29, x30, [sp, #-48]!");
  a.L("stp x19, x20, [sp, #16]");
  a.L("str x0, [sp, #32]");
  a.L("cbz x0, leaf");
  // Hash/bit work.
  a.L("eor x20, x20, x20, lsr #12");
  a.L("eor x20, x20, x20, lsl #25");
  a.L("eor x20, x20, x20, lsr #27");
  a.L("lsr x9, x20, #30");
  a.Imm("x10", 8191);
  a.L("and x9, x9, x10");
  a.L("ldr x11, [x14, x9, lsl #3]");   // transposition-table probe
  a.L("eor x20, x20, x11");            // probe result feeds the hash chain
  a.L("add x19, x11, x20");
  a.L("str x19, [x14, x9, lsl #3]");
  // Two children.
  a.L("ldr x0, [sp, #32]");
  a.L("sub x0, x0, #1");
  a.L("bl search");
  a.L("mov x19, x0");
  a.L("ldr x0, [sp, #32]");
  a.L("sub x0, x0, #1");
  a.L("bl search");
  a.L("add x0, x0, x19");
  a.L("clz x9, x0");
  a.L("add x0, x0, x9");
  a.L("b unwind");
  a.Lbl("leaf");
  a.L("mov x9, #255").L("and x0, x20, x9");
  a.Lbl("unwind");
  a.L("ldp x19, x20, [sp, #16]");
  a.L("ldp x29, x30, [sp], #48");
  a.L("ret");
  a.L(Bss("ttable", 64 * 1024));
  return a.str();
}

// ---- 538.imagick: SIMD FP streaming transforms. ----
std::string GenImagick(uint64_t scale) {
  Asm a;
  const uint64_t kFloats = 256 * 1024;  // 1MiB
  const uint64_t passes = scale / (kFloats / 4 * 7) + 1;
  a.L(".globl _start").L(".text").Lbl("_start");
  a.Addr("x14", "img").Addr("x15", "outp");
  a.Imm("x19", kFloats / 4);
  a.L("mov x9, #0");
  a.Lbl("seed");
  a.L("scvtf s0, w9");
  a.L("str s0, [x14, x9, lsl #2]");
  a.L("add x9, x9, #1");
  a.L("cmp x9, x19");
  a.L("b.lo seed");
  a.Imm("x19", passes);
  a.Lbl("pass");
  a.L("mov x9, #0");
  a.Imm("x12", kFloats - 16);
  a.Lbl("row");
  a.L("add x10, x14, x9");
  a.L("ldr q0, [x10]");
  a.L("ldr q1, [x10, #16]");
  a.L("fmul v2.4s, v0.4s, v1.4s");
  a.L("fadd v3.4s, v2.4s, v0.4s");
  a.L("add x11, x15, x9");
  a.L("str q3, [x11]");
  a.L("add x9, x9, #16");
  a.L("cmp x9, x12");
  a.L("b.lo row");
  a.L("subs x19, x19, #1");
  a.L("b.ne pass");
  a.L("ldr w13, [x15, #64]");
  a.Exit("x13");
  a.L(Bss("img", kFloats) + Bss("outp", kFloats));
  return a.str();
}

// ---- 541.leela: load-dense, branchy tree playouts (LFI's worst case).
std::string GenLeela(uint64_t scale) {
  Asm a;
  const uint64_t kBoard = 1 << 21;  // 2MiB arena
  const uint64_t steps = scale / 18;
  a.L(".globl _start").L(".text").Lbl("_start");
  a.LcgSetup();
  a.Addr("x14", "arena");
  // Light init: stores along the LCG path.
  a.Imm("x19", 32768);
  a.Lbl("init");
  a.Lcg();
  a.L("lsr x9, x20, #9");
  a.Imm("x10", kBoard / 8 - 1);
  a.L("and x9, x9, x10");
  a.L("str x20, [x14, x9, lsl #3]");
  a.L("subs x19, x19, #1");
  a.L("b.ne init");
  a.Imm("x19", steps);
  a.L("mov x13, #0");
  a.Imm("x15", kBoard / 8 - 1);
  a.L("mov x12, #0");
  a.Lbl("playout");
  a.Lcg();
  // Dependent loads: each address derives from the previous iteration's
  // loaded data, so the whole run is one long load chain - guards in the
  // address path hurt most here, which is why leela is LFI's worst
  // benchmark in Figure 3.
  a.L("eor x9, x20, x12");
  a.L("and x9, x9, x15");
  a.L("ldr x10, [x14, x9, lsl #3]");
  a.L("and x10, x10, x15");
  a.L("ldr x11, [x14, w10, uxtw #3]");  // 32-bit index form (C++ idiom)
  a.L("and x11, x11, x15");
  a.L("ldr x12, [x14, x11, lsl #3]");
  a.L("add x13, x13, x12");
  // Unpredictable branches on loaded bits.
  a.L("tbz x12, #3, skipa");
  a.L("add x13, x13, #1");
  a.Lbl("skipa");
  a.L("tbz x12, #7, skipb");
  a.L("eor x13, x13, x10");
  a.Lbl("skipb");
  a.L("subs x19, x19, #1");
  a.L("b.ne playout");
  a.Exit("x13");
  a.L(Bss("arena", kBoard));
  return a.str();
}

// ---- 544.nab: scalar FP molecular-dynamics-style loops. ----
std::string GenNab(uint64_t scale) {
  Asm a;
  const uint64_t kAtoms = 16 * 1024;
  const uint64_t passes = scale / (kAtoms * 9) + 1;
  a.L(".globl _start").L(".text").Lbl("_start");
  a.Addr("x14", "pos").Addr("x15", "force");
  a.Imm("x19", kAtoms);
  a.L("mov x9, #0");
  a.Lbl("seed");
  a.L("scvtf d0, x9");
  a.L("str d0, [x14, x9, lsl #3]");
  a.L("add x9, x9, #1");
  a.L("cmp x9, x19");
  a.L("b.lo seed");
  a.Imm("x19", passes);
  a.Imm("x9", 1);
  a.L("scvtf d7, x9");  // 1.0
  a.L("fmov d6, xzr");
  a.Lbl("pass");
  a.L("mov x9, #0");
  a.Imm("x12", kAtoms - 1);
  a.Lbl("atom");
  a.L("ldr d0, [x14, x9, lsl #3]");
  a.L("add x10, x9, #1");
  a.L("ldr d1, [x14, x10, lsl #3]");
  a.L("fsub d2, d1, d0");
  a.L("fmadd d3, d2, d2, d7");
  a.L("fdiv d4, d7, d3");        // 1/r^2-ish
  a.L("fmadd d6, d4, d2, d6");
  a.L("str d4, [x15, x9, lsl #3]");
  a.L("add x9, x9, #1");
  a.L("cmp x9, x12");
  a.L("b.lo atom");
  a.L("subs x19, x19, #1");
  a.L("b.ne pass");
  a.L("fcvtzs x13, d6");
  a.Exit("x13");
  a.L(Bss("pos", kAtoms * 8) + Bss("force", kAtoms * 8));
  return a.str();
}

// ---- 557.xz: byte-granular compression-style integer work. ----
std::string GenXz(uint64_t scale) {
  Asm a;
  const uint64_t kBuf = 1 << 20;
  const uint64_t laps = scale / (kBuf / 2) + 1;
  a.L(".globl _start").L(".text").Lbl("_start");
  a.LcgSetup();
  a.Addr("x14", "inbuf").Addr("x15", "outbuf").Addr("x13", "crctab");
  // Fill input + a 256-entry table.
  a.Imm("x19", kBuf / 8);
  a.L("mov x9, #0");
  a.Lbl("fill");
  a.Lcg();
  a.L("str x20, [x14, x9, lsl #3]");
  a.L("add x9, x9, #1");
  a.L("cmp x9, x19");
  a.L("b.lo fill");
  a.L("mov x9, #0");
  a.Lbl("tab");
  a.L("rbit w10, w9");
  a.L("str w10, [x13, x9, lsl #2]");
  a.L("add x9, x9, #1");
  a.L("cmp x9, #256");
  a.L("b.lo tab");
  a.Imm("x19", laps);
  a.L("mov x12, #0");  // crc
  a.Lbl("lap");
  a.L("mov x9, #0");
  a.Imm("x11", kBuf / 2);
  a.Lbl("byte");
  a.L("ldrb w10, [x14, x9]");
  a.L("eor w10, w10, w12");
  a.L("and x10, x10, #255");
  a.L("ldr w10, [x13, x10, lsl #2]");   // table lookup
  a.L("eor w12, w10, w12, lsr #8");
  a.L("tbz w12, #0, even");
  a.L("strb w12, [x15, x9]");
  a.Lbl("even");
  a.L("add x9, x9, #1");
  a.L("cmp x9, x11");
  a.L("b.lo byte");
  a.L("subs x19, x19, #1");
  a.L("b.ne lap");
  a.Exit("x12");
  a.L(Bss("inbuf", kBuf) + Bss("outbuf", kBuf) + Bss("crctab", 1024));
  return a.str();
}

// ---- CoreMark-like: list walk + int matrix + state machine. ----
std::string GenCoremark(uint64_t scale) {
  Asm a;
  const uint64_t iters = scale / 60;
  a.L(".globl _start").L(".text").Lbl("_start");
  a.LcgSetup();
  a.Addr("x14", "list").Addr("x15", "mat");
  // List of 1024 nodes (16B each), sequential next pointers.
  a.L("mov x9, #0");
  a.Lbl("mklist");
  a.L("add x10, x9, #16");
  a.L("mov x11, #16383").L("and x10, x10, x11");
  a.L("add x12, x14, x9");
  a.L("str x10, [x12]");
  a.L("str x9, [x12, #8]");
  a.L("add x9, x9, #16");
  a.L("cmp x9, #16384");
  a.L("b.lo mklist");
  a.Imm("x19", iters);
  a.L("mov x13, #0");
  a.L("mov x9, #0");
  a.Lbl("main");
  // List walk: two chase steps per iteration, one in the register-offset
  // form compilers emit for array-of-structs traversal and one through a
  // materialized element pointer. The payload selects the matrix row (as
  // CoreMark's list values drive its matrix and state work), keeping the
  // loads on the critical path.
  a.L("ldr x9, [x14, x9]");
  a.L("add x10, x14, x9");
  a.L("ldr x9, [x10]");
  a.L("ldr x11, [x10, #8]");
  a.L("and x12, x11, #60");
  // Two-element row MAC off the loaded index.
  a.L("ldr w0, [x15, x12, lsl #2]");
  a.L("add x1, x12, #1");
  a.L("ldr w2, [x15, x1, lsl #2]");
  a.L("mul w0, w0, w2");
  a.L("add w13, w13, w0");
  a.L("str w13, [x15, x12, lsl #2]");
  // State machine driven by list payloads: data-dependent but mostly
  // predictable transitions, like CoreMark's deterministic state inputs.
  a.Lcg();
  a.L("tbz x11, #6, stateb");
  a.L("eor x13, x13, x20, lsr #7");
  a.L("b sdone");
  a.Lbl("stateb");
  a.L("add x13, x13, x20, lsr #50");
  a.Lbl("sdone");
  a.L("subs x19, x19, #1");
  a.L("b.ne main");
  a.Exit("x13");
  a.L(Bss("list", 16384) + Bss("mat", 1024));
  return a.str();
}

}  // namespace

const std::vector<WorkloadInfo>& AllWorkloads() {
  static const std::vector<WorkloadInfo> kAll = {
      {"502.gcc", false},       {"505.mcf", true},
      {"508.namd", true},       {"510.parest", false},
      {"511.povray", false},    {"519.lbm", true},
      {"520.omnetpp", false},   {"523.xalancbmk", false},
      {"525.x264", true},       {"531.deepsjeng", true},
      {"538.imagick", false},   {"541.leela", false},
      {"544.nab", true},        {"557.xz", true},
      {"coremark", false},
  };
  return kAll;
}

std::string Generate(const std::string& name, uint64_t scale) {
  if (name == "502.gcc") return GenGcc(scale);
  if (name == "505.mcf") return GenMcf(scale);
  if (name == "508.namd") return GenNamd(scale);
  if (name == "510.parest") return GenParest(scale);
  if (name == "511.povray") return GenPovray(scale);
  if (name == "519.lbm") return GenLbm(scale);
  if (name == "520.omnetpp") return GenOmnetpp(scale);
  if (name == "523.xalancbmk") return GenXalancbmk(scale);
  if (name == "525.x264") return GenX264(scale);
  if (name == "531.deepsjeng") return GenDeepsjeng(scale);
  if (name == "538.imagick") return GenImagick(scale);
  if (name == "541.leela") return GenLeela(scale);
  if (name == "544.nab") return GenNab(scale);
  if (name == "557.xz") return GenXz(scale);
  if (name == "coremark") return GenCoremark(scale);
  return "";
}

}  // namespace lfi::workloads
