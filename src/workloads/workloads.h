// Synthetic SPEC CPU2017 stand-in workloads.
//
// The paper evaluates on the 14 C/C++ SPECrate benchmarks that build with
// musl (Section 6). SPEC is proprietary, so this module generates, for
// each of those benchmarks, a deterministic assembly program with the
// benchmark's characteristic *instruction mix*: the densities of loads and
// stores, the addressing-mode distribution, stack and call traffic, branch
// predictability, FP/SIMD content, and working-set size. SFI overhead is a
// function of exactly those properties, so the per-benchmark overhead
// ordering and the optimization-level deltas of Figures 3-5 are preserved
// even though the computation itself is synthetic (see DESIGN.md).
//
// Every program is a freestanding LFI executable: it uses `rtcall`
// pseudo-instructions for system calls and exits with a checksum-derived
// status so tests can detect miscompiled/mis-rewritten runs.
#ifndef LFI_WORKLOADS_WORKLOADS_H_
#define LFI_WORKLOADS_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lfi::workloads {

struct WorkloadInfo {
  std::string name;       // e.g. "505.mcf"
  bool wasm_compatible;   // part of the 7-benchmark Wasm subset (§6.2)
};

// The 14 SPEC-subset workloads, in the paper's order, plus "coremark".
const std::vector<WorkloadInfo>& AllWorkloads();

// Generates the assembly text for `name`. `scale` controls the dynamic
// instruction count of the main phase (roughly `scale` instructions).
// Returns an empty string for unknown names.
//
// Every program exits with a checksum-derived status in [0, 128). The
// value is data-dependent, so tests verify semantic preservation by
// comparing the status of a rewritten/instrumented run against the native
// run of the same program - any guard that altered semantics shows up as
// a status mismatch.
std::string Generate(const std::string& name, uint64_t scale);

}  // namespace lfi::workloads

#endif  // LFI_WORKLOADS_WORKLOADS_H_
