// Encode/decode roundtrip tests for the ARM64 subset.
//
// The binary encoding layer is load-bearing for the whole system: the
// verifier sees only decoded words, so any encode/decode disagreement would
// let the rewriter and verifier reason about different programs. These
// tests sweep every instruction class through an encode -> decode -> compare
// cycle and pin a few words against their architecturally defined values.

#include <gtest/gtest.h>

#include "arch/decode.h"
#include "arch/encode.h"

namespace lfi::arch {
namespace {

// Encodes, decodes, and expects the decoded Inst to equal the input.
void ExpectRoundTrip(const Inst& in) {
  auto word = Encode(in);
  ASSERT_TRUE(word.ok()) << MnName(in) << ": " << word.error();
  auto back = Decode(*word);
  ASSERT_TRUE(back.ok()) << MnName(in) << ": " << back.error();
  EXPECT_EQ(*back, in) << MnName(in) << " word=" << std::hex << *word;
}

Inst AddImm(Width w, Reg rd, Reg rn, int64_t imm) {
  Inst i;
  i.mn = Mn::kAddImm;
  i.width = w;
  i.rd = rd;
  i.rn = rn;
  i.imm = imm;
  return i;
}

TEST(Encode, KnownWords) {
  // Cross-checked against a reference assembler.
  // add x0, x1, #4      -> 0x91001020
  EXPECT_EQ(*Encode(AddImm(Width::kX, Reg::X(0), Reg::X(1), 4)), 0x91001020u);
  // nop
  Inst nop;
  nop.mn = Mn::kNop;
  EXPECT_EQ(*Encode(nop), 0xD503201Fu);
  // ret (x30)
  Inst ret;
  ret.mn = Mn::kRet;
  ret.rn = Reg::X(30);
  EXPECT_EQ(*Encode(ret), 0xD65F03C0u);
  // ldr x0, [x1]        -> 0xF9400020
  Inst ldr;
  ldr.mn = Mn::kLdr;
  ldr.width = Width::kX;
  ldr.msize = 8;
  ldr.rt = Reg::X(0);
  ldr.mem.base = Reg::X(1);
  EXPECT_EQ(*Encode(ldr), 0xF9400020u);
  // The LFI guard: add x18, x21, w0, uxtw.
  // sf=1 op=0 S=0 01011 00 1 Rm=0 option=010 imm3=0 Rn=21 Rd=18
  Inst guard;
  guard.mn = Mn::kAddExt;
  guard.width = Width::kX;
  guard.rd = Reg::X(18);
  guard.rn = Reg::X(21);
  guard.rm = Reg::X(0);
  guard.ext = Extend::kUxtw;
  EXPECT_EQ(*Encode(guard), 0x8B2042B2u);
  EXPECT_TRUE(IsGuardFor(*Decode(0x8B2042B2u), Reg::X(18)));
}

TEST(Encode, AddSubImmediateSweep) {
  for (uint8_t rd : {0, 5, 29, 30}) {
    for (int64_t imm : {0L, 1L, 4095L, 4096L, 0xfff000L}) {
      ExpectRoundTrip(AddImm(Width::kX, Reg::X(rd), Reg::X(rd), imm));
      ExpectRoundTrip(AddImm(Width::kW, Reg::X(rd), Reg::Sp(), imm));
    }
  }
  // Out-of-range immediates must fail to encode.
  EXPECT_FALSE(Encode(AddImm(Width::kX, Reg::X(0), Reg::X(1), -1)).ok());
  EXPECT_FALSE(Encode(AddImm(Width::kX, Reg::X(0), Reg::X(1), 4097)).ok());
  EXPECT_FALSE(
      Encode(AddImm(Width::kX, Reg::X(0), Reg::X(1), 1 << 24)).ok());
}

TEST(Encode, AddSubSpForms) {
  // add sp, sp, #16 and sub sp, sp, #16 are the common prologue forms.
  ExpectRoundTrip(AddImm(Width::kX, Reg::Sp(), Reg::Sp(), 16));
  Inst sub = AddImm(Width::kX, Reg::Sp(), Reg::Sp(), 16);
  sub.mn = Mn::kSubImm;
  ExpectRoundTrip(sub);
  // adds cannot target sp.
  Inst adds = AddImm(Width::kX, Reg::Sp(), Reg::X(0), 1);
  adds.mn = Mn::kAddsImm;
  EXPECT_FALSE(Encode(adds).ok());
}

TEST(Encode, ShiftedRegisterSweep) {
  for (Mn mn : {Mn::kAddReg, Mn::kSubReg, Mn::kAddsReg, Mn::kSubsReg,
                Mn::kAndReg, Mn::kAndsReg, Mn::kOrrReg, Mn::kEorReg,
                Mn::kBicReg}) {
    for (Shift sh : {Shift::kLsl, Shift::kLsr, Shift::kAsr}) {
      for (uint8_t amt : {0, 1, 31}) {
        Inst i;
        i.mn = mn;
        i.width = Width::kX;
        i.rd = Reg::X(3);
        i.rn = Reg::X(4);
        i.rm = Reg::X(5);
        i.shift = sh;
        i.shift_amount = amt;
        ExpectRoundTrip(i);
      }
    }
  }
}

TEST(Encode, ExtendedRegisterSweep) {
  for (Extend e : {Extend::kUxtb, Extend::kUxth, Extend::kUxtw, Extend::kUxtx,
                   Extend::kSxtb, Extend::kSxth, Extend::kSxtw,
                   Extend::kSxtx}) {
    for (uint8_t amt : {0, 2, 4}) {
      Inst i;
      i.mn = Mn::kAddExt;
      i.width = Width::kX;
      i.rd = Reg::X(18);
      i.rn = Reg::X(21);
      i.rm = Reg::X(7);
      i.ext = e;
      i.shift_amount = amt;
      ExpectRoundTrip(i);
    }
  }
}

TEST(Encode, MovWideSweep) {
  for (Mn mn : {Mn::kMovz, Mn::kMovn, Mn::kMovk}) {
    for (uint8_t hw : {0, 16, 32, 48}) {
      Inst i;
      i.mn = mn;
      i.width = Width::kX;
      i.rd = Reg::X(9);
      i.imm = 0xbeef;
      i.shift_amount = hw;
      ExpectRoundTrip(i);
    }
  }
  Inst w;
  w.mn = Mn::kMovz;
  w.width = Width::kW;
  w.rd = Reg::X(1);
  w.imm = 7;
  w.shift_amount = 32;  // invalid for 32-bit form
  EXPECT_FALSE(Encode(w).ok());
}

TEST(Encode, BitfieldAliases) {
  // lsl x0, x1, #3 == ubfm x0, x1, #61, #60
  Inst i;
  i.mn = Mn::kUbfm;
  i.width = Width::kX;
  i.rd = Reg::X(0);
  i.rn = Reg::X(1);
  i.immr = 61;
  i.imms = 60;
  ExpectRoundTrip(i);
  i.mn = Mn::kSbfm;  // asr-family
  i.immr = 3;
  i.imms = 63;
  ExpectRoundTrip(i);
}

TEST(Encode, MulDivSweep) {
  for (Mn mn : {Mn::kMadd, Mn::kMsub}) {
    Inst i;
    i.mn = mn;
    i.width = Width::kX;
    i.rd = Reg::X(0);
    i.rn = Reg::X(1);
    i.rm = Reg::X(2);
    i.ra = Reg::X(3);
    ExpectRoundTrip(i);
  }
  for (Mn mn : {Mn::kSdiv, Mn::kUdiv}) {
    Inst i;
    i.mn = mn;
    i.width = Width::kW;
    i.rd = Reg::X(0);
    i.rn = Reg::X(1);
    i.rm = Reg::X(2);
    ExpectRoundTrip(i);
  }
}

TEST(Encode, CondSelSweep) {
  for (Mn mn : {Mn::kCsel, Mn::kCsinc, Mn::kCsinv, Mn::kCsneg}) {
    for (Cond c : {Cond::kEq, Cond::kLt, Cond::kHi}) {
      Inst i;
      i.mn = mn;
      i.width = Width::kX;
      i.rd = Reg::X(0);
      i.rn = Reg::X(1);
      i.rm = Reg::X(2);
      i.cond = c;
      ExpectRoundTrip(i);
    }
  }
}

TEST(Encode, AdrForms) {
  for (int64_t off : {0L, 4L, -4L, 1048572L, -1048576L}) {
    Inst i;
    i.mn = Mn::kAdr;
    i.rd = Reg::X(0);
    i.imm = off;
    ExpectRoundTrip(i);
  }
  for (int64_t off : {0L, 4096L, -4096L, int64_t{1} << 30}) {
    Inst i;
    i.mn = Mn::kAdrp;
    i.rd = Reg::X(0);
    i.imm = off;
    ExpectRoundTrip(i);
  }
}

struct LsCase {
  AddrMode mode;
  int64_t imm;
  uint8_t shift;
};

class LoadStoreTest : public ::testing::TestWithParam<LsCase> {};

TEST_P(LoadStoreTest, IntRoundTrip) {
  const LsCase& c = GetParam();
  for (unsigned size : {1u, 2u, 4u, 8u}) {
    Inst i;
    i.mn = Mn::kLdr;
    i.msize = static_cast<uint8_t>(size);
    i.width = size == 8 ? Width::kX : Width::kW;
    i.rt = Reg::X(0);
    i.mem.base = Reg::X(1);
    i.mem.mode = c.mode;
    if (c.mode == AddrMode::kImm) {
      i.mem.imm = c.imm * size;  // keep scaled offsets aligned
    } else {
      i.mem.imm = c.imm;
    }
    if (i.mem.IsRegOffset()) {
      i.mem.index = Reg::X(2);
      i.mem.shift =
          c.shift ? static_cast<uint8_t>(std::countr_zero(size)) : 0;
    }
    ExpectRoundTrip(i);
    i.mn = Mn::kStr;
    ExpectRoundTrip(i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, LoadStoreTest,
    ::testing::Values(LsCase{AddrMode::kImm, 0, 0},
                      LsCase{AddrMode::kImm, 16, 0},
                      LsCase{AddrMode::kImm, -1, 0},    // ldur form
                      LsCase{AddrMode::kPreIndex, -16, 0},
                      LsCase{AddrMode::kPostIndex, 16, 0},
                      LsCase{AddrMode::kRegLsl, 0, 0},
                      LsCase{AddrMode::kRegLsl, 0, 1},
                      LsCase{AddrMode::kRegUxtw, 0, 0},
                      LsCase{AddrMode::kRegUxtw, 0, 1},
                      LsCase{AddrMode::kRegSxtw, 0, 0}));

TEST(Encode, SignExtendingLoads) {
  for (unsigned size : {1u, 2u, 4u}) {
    Inst i;
    i.mn = Mn::kLdr;
    i.msigned = true;
    i.msize = static_cast<uint8_t>(size);
    i.width = Width::kX;
    i.rt = Reg::X(3);
    i.mem.base = Reg::Sp();
    i.mem.imm = 8;
    ExpectRoundTrip(i);
  }
  // ldrsb/ldrsh to a w register.
  for (unsigned size : {1u, 2u}) {
    Inst i;
    i.mn = Mn::kLdr;
    i.msigned = true;
    i.msize = static_cast<uint8_t>(size);
    i.width = Width::kW;
    i.rt = Reg::X(3);
    i.mem.base = Reg::X(4);
    ExpectRoundTrip(i);
  }
}

TEST(Encode, PairSweep) {
  for (Mn mn : {Mn::kLdp, Mn::kStp}) {
    for (AddrMode m :
         {AddrMode::kImm, AddrMode::kPreIndex, AddrMode::kPostIndex}) {
      for (int64_t imm : {-512L, -16L, 0L, 16L, 504L}) {
        Inst i;
        i.mn = mn;
        i.width = Width::kX;
        i.msize = 8;
        i.rt = Reg::X(29);
        i.rt2 = Reg::X(30);
        i.mem.base = Reg::Sp();
        i.mem.mode = m;
        i.mem.imm = imm;
        ExpectRoundTrip(i);
      }
    }
  }
}

TEST(Encode, ExclusiveAndAcquireRelease) {
  for (Mn mn : {Mn::kLdxr, Mn::kLdar, Mn::kStlr}) {
    for (unsigned size : {4u, 8u}) {
      Inst i;
      i.mn = mn;
      i.msize = static_cast<uint8_t>(size);
      i.width = size == 8 ? Width::kX : Width::kW;
      i.rt = Reg::X(0);
      i.mem.base = Reg::X(18);
      ExpectRoundTrip(i);
    }
  }
  Inst stxr;
  stxr.mn = Mn::kStxr;
  stxr.msize = 8;
  stxr.width = Width::kX;
  stxr.rt = Reg::X(1);
  stxr.rs = Reg::X(2);
  stxr.mem.base = Reg::X(18);
  ExpectRoundTrip(stxr);
}

TEST(Encode, BranchSweep) {
  for (Mn mn : {Mn::kB, Mn::kBl}) {
    for (int64_t off : {0L, 4L, -4L, 134217724L, -134217728L}) {
      Inst i;
      i.mn = mn;
      i.imm = off;
      ExpectRoundTrip(i);
    }
    Inst far;
    far.mn = mn;
    far.imm = int64_t{1} << 28;  // beyond 128MiB
    EXPECT_FALSE(Encode(far).ok());
  }
  for (Cond c : {Cond::kEq, Cond::kNe, Cond::kGe, Cond::kLs}) {
    Inst i;
    i.mn = Mn::kBCond;
    i.cond = c;
    i.imm = -64;
    ExpectRoundTrip(i);
  }
  for (Mn mn : {Mn::kCbz, Mn::kCbnz}) {
    Inst i;
    i.mn = mn;
    i.width = Width::kW;
    i.rt = Reg::X(3);
    i.imm = 1024;
    ExpectRoundTrip(i);
  }
  for (uint8_t bit : {0, 5, 31, 32, 63}) {
    Inst i;
    i.mn = Mn::kTbnz;
    i.bit = bit;
    i.width = bit >= 32 ? Width::kX : Width::kW;
    i.rt = Reg::X(4);
    i.imm = 32764;  // max tbz range
    ExpectRoundTrip(i);
    i.imm = 32768;  // out of the 14-bit range
    EXPECT_FALSE(Encode(i).ok());
  }
  for (Mn mn : {Mn::kBr, Mn::kBlr, Mn::kRet}) {
    Inst i;
    i.mn = mn;
    i.rn = Reg::X(18);
    ExpectRoundTrip(i);
  }
}

TEST(Encode, FpSweep) {
  for (Mn mn : {Mn::kFadd, Mn::kFsub, Mn::kFmul, Mn::kFdiv}) {
    for (FpSize s : {FpSize::kS, FpSize::kD}) {
      Inst i;
      i.mn = mn;
      i.fsize = s;
      i.vd = VReg::V(0);
      i.vn = VReg::V(1);
      i.vm = VReg::V(2);
      ExpectRoundTrip(i);
    }
  }
  Inst fmadd;
  fmadd.mn = Mn::kFmadd;
  fmadd.fsize = FpSize::kD;
  fmadd.vd = VReg::V(0);
  fmadd.vn = VReg::V(1);
  fmadd.vm = VReg::V(2);
  fmadd.va = VReg::V(3);
  ExpectRoundTrip(fmadd);
  Inst fcmp;
  fcmp.mn = Mn::kFcmp;
  fcmp.fsize = FpSize::kS;
  fcmp.vn = VReg::V(4);
  fcmp.vm = VReg::V(5);
  ExpectRoundTrip(fcmp);
  Inst fsqrt;
  fsqrt.mn = Mn::kFsqrt;
  fsqrt.fsize = FpSize::kD;
  fsqrt.vd = VReg::V(1);
  fsqrt.vn = VReg::V(2);
  ExpectRoundTrip(fsqrt);
}

TEST(Encode, FpConversionsAndMoves) {
  Inst scvtf;
  scvtf.mn = Mn::kScvtf;
  scvtf.width = Width::kX;
  scvtf.fsize = FpSize::kD;
  scvtf.rn = Reg::X(0);
  scvtf.vd = VReg::V(1);
  ExpectRoundTrip(scvtf);
  Inst fcvtzs;
  fcvtzs.mn = Mn::kFcvtzs;
  fcvtzs.width = Width::kX;
  fcvtzs.fsize = FpSize::kD;
  fcvtzs.vn = VReg::V(1);
  fcvtzs.rd = Reg::X(0);
  ExpectRoundTrip(fcvtzs);
  Inst toGpr;
  toGpr.mn = Mn::kFmov;
  toGpr.width = Width::kX;
  toGpr.fsize = FpSize::kD;
  toGpr.vn = VReg::V(3);
  toGpr.rd = Reg::X(5);
  ExpectRoundTrip(toGpr);
  Inst toFp;
  toFp.mn = Mn::kFmov;
  toFp.width = Width::kX;
  toFp.fsize = FpSize::kD;
  toFp.rn = Reg::X(5);
  toFp.vd = VReg::V(3);
  ExpectRoundTrip(toFp);
  Inst fpfp;
  fpfp.mn = Mn::kFmov;
  fpfp.fsize = FpSize::kS;
  fpfp.vd = VReg::V(1);
  fpfp.vn = VReg::V(2);
  ExpectRoundTrip(fpfp);
}

TEST(Encode, VectorSweep) {
  for (Mn mn : {Mn::kVAdd, Mn::kVFadd, Mn::kVFmul}) {
    for (FpSize s : {FpSize::kV4S, FpSize::kV2D}) {
      Inst i;
      i.mn = mn;
      i.fsize = s;
      i.vd = VReg::V(0);
      i.vn = VReg::V(1);
      i.vm = VReg::V(2);
      ExpectRoundTrip(i);
    }
  }
  // SIMD q-register loads/stores.
  Inst q;
  q.mn = Mn::kLdrF;
  q.fsize = FpSize::kQ;
  q.msize = 16;
  q.vt = VReg::V(7);
  q.mem.base = Reg::X(21);
  q.mem.mode = AddrMode::kRegUxtw;
  q.mem.index = Reg::X(3);
  ExpectRoundTrip(q);
}

TEST(Encode, SystemInsts) {
  Inst svc;
  svc.mn = Mn::kSvc;
  svc.imm = 0;
  ExpectRoundTrip(svc);
  svc.imm = 0x1234;
  ExpectRoundTrip(svc);
  Inst brk;
  brk.mn = Mn::kBrk;
  brk.imm = 1;
  ExpectRoundTrip(brk);
  Inst nop;
  nop.mn = Mn::kNop;
  ExpectRoundTrip(nop);
}

TEST(Decode, RejectsGarbage) {
  // Words that are not in the supported subset must decode to errors, not
  // to bogus instructions. (A sample across major encoding holes.)
  for (uint32_t w : {0x00000000u, 0xFFFFFFFFu, 0x9BFF0000u, 0xD5033FDFu,
                     0x4CDF7060u /* SVE-ish / multi-struct load */}) {
    EXPECT_FALSE(Decode(w).ok()) << std::hex << w;
  }
}

TEST(Decode, AllWordsEitherDecodeOrError) {
  // Pseudo-random fuzz: Decode must never crash and must roundtrip through
  // Encode whenever it succeeds (decode(w) re-encodes to an equivalent
  // instruction).
  uint64_t state = 0x12345678abcdefULL;
  int decoded = 0;
  for (int k = 0; k < 200000; ++k) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const uint32_t w = static_cast<uint32_t>(state >> 32);
    auto inst = Decode(w);
    if (!inst.ok()) continue;
    ++decoded;
    auto re = Encode(*inst);
    ASSERT_TRUE(re.ok()) << std::hex << w << " " << MnName(*inst) << ": "
                         << re.error();
    auto again = Decode(*re);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, *inst) << std::hex << w << " -> " << *re;
  }
  // Sanity: the fuzz actually exercised the decoder.
  EXPECT_GT(decoded, 100);
}

TEST(EncodeAll, ProducesLittleEndianStream) {
  std::vector<Inst> prog(2);
  prog[0].mn = Mn::kNop;
  prog[1].mn = Mn::kRet;
  prog[1].rn = Reg::X(30);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(EncodeAll(prog, &bytes).ok());
  ASSERT_EQ(bytes.size(), 8u);
  EXPECT_EQ(ReadWordLE(bytes, 0), 0xD503201Fu);
  EXPECT_EQ(ReadWordLE(bytes, 4), 0xD65F03C0u);
  auto back = DecodeAll(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 2u);
}

}  // namespace
}  // namespace lfi::arch
