// Parser / printer / assembler tests for the assembly-text layer.

#include <gtest/gtest.h>

#include "arch/decode.h"
#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "asmtext/printer.h"

namespace lfi::asmtext {
namespace {

using arch::AddrMode;
using arch::Cond;
using arch::Extend;
using arch::Mn;
using arch::Reg;
using arch::Width;

arch::Inst MustParse(const std::string& line) {
  auto s = ParseInst(line);
  EXPECT_TRUE(s.ok()) << line << ": " << (s.ok() ? "" : s.error());
  return s.ok() ? s->inst : arch::Inst{};
}

TEST(Parser, BasicAlu) {
  auto add = MustParse("add x0, x1, #16");
  EXPECT_EQ(add.mn, Mn::kAddImm);
  EXPECT_EQ(add.rd, Reg::X(0));
  EXPECT_EQ(add.rn, Reg::X(1));
  EXPECT_EQ(add.imm, 16);

  auto sub = MustParse("sub w2, w3, w4, lsl #2");
  EXPECT_EQ(sub.mn, Mn::kSubReg);
  EXPECT_EQ(sub.width, Width::kW);
  EXPECT_EQ(sub.shift_amount, 2);

  // Negative add immediate flips to sub.
  auto neg = MustParse("add x0, x1, #-8");
  EXPECT_EQ(neg.mn, Mn::kSubImm);
  EXPECT_EQ(neg.imm, 8);
}

TEST(Parser, GuardInstruction) {
  auto g = MustParse("add x18, x21, w7, uxtw");
  EXPECT_EQ(g.mn, Mn::kAddExt);
  EXPECT_EQ(g.ext, Extend::kUxtw);
  EXPECT_EQ(g.rm, Reg::X(7));
  EXPECT_TRUE(arch::IsGuardFor(g, Reg::X(18)));
}

TEST(Parser, SpGuardSequence) {
  // The two-instruction SP guard from Section 4.2.
  auto mv = MustParse("mov w22, wsp");
  EXPECT_EQ(mv.mn, Mn::kAddImm);
  EXPECT_EQ(mv.width, Width::kW);
  EXPECT_EQ(mv.rd, Reg::X(22));
  EXPECT_EQ(mv.rn, Reg::Sp());
  auto g = MustParse("add sp, x21, x22");
  EXPECT_TRUE(arch::IsSpGuard(g));
}

TEST(Parser, MovAliases) {
  auto movr = MustParse("mov x0, x1");
  EXPECT_EQ(movr.mn, Mn::kOrrReg);
  EXPECT_TRUE(movr.rn.IsZr());
  auto movsp = MustParse("mov x0, sp");
  EXPECT_EQ(movsp.mn, Mn::kAddImm);
  auto movi = MustParse("mov x0, #42");
  EXPECT_EQ(movi.mn, Mn::kMovz);
  EXPECT_EQ(movi.imm, 42);
  auto movn = MustParse("mov x0, #-1");
  EXPECT_EQ(movn.mn, Mn::kMovn);
  EXPECT_EQ(movn.imm, 0);
}

TEST(Parser, CmpAndShiftsAndCset) {
  auto cmp = MustParse("cmp x1, #0");
  EXPECT_EQ(cmp.mn, Mn::kSubsImm);
  EXPECT_TRUE(cmp.rd.IsZr());
  auto lsl = MustParse("lsl x0, x1, #3");
  EXPECT_EQ(lsl.mn, Mn::kUbfm);
  EXPECT_EQ(lsl.immr, 61);
  EXPECT_EQ(lsl.imms, 60);
  auto asr = MustParse("asr w0, w1, #5");
  EXPECT_EQ(asr.mn, Mn::kSbfm);
  EXPECT_EQ(asr.immr, 5);
  EXPECT_EQ(asr.imms, 31);
  auto cset = MustParse("cset w0, eq");
  EXPECT_EQ(cset.mn, Mn::kCsinc);
  EXPECT_EQ(cset.cond, Cond::kNe);
  auto mul = MustParse("mul x0, x1, x2");
  EXPECT_EQ(mul.mn, Mn::kMadd);
  EXPECT_TRUE(mul.ra.IsZr());
}

TEST(Parser, AddressingModes) {
  auto base = MustParse("ldr x0, [x1]");
  EXPECT_EQ(base.mem.mode, AddrMode::kImm);
  EXPECT_EQ(base.mem.imm, 0);
  auto imm = MustParse("ldr x0, [x1, #24]");
  EXPECT_EQ(imm.mem.imm, 24);
  auto pre = MustParse("str x0, [sp, #-16]!");
  EXPECT_EQ(pre.mem.mode, AddrMode::kPreIndex);
  EXPECT_EQ(pre.mem.imm, -16);
  EXPECT_TRUE(pre.mem.base.IsSp());
  auto post = MustParse("ldr x0, [sp], #16");
  EXPECT_EQ(post.mem.mode, AddrMode::kPostIndex);
  EXPECT_EQ(post.mem.imm, 16);
  auto lsl = MustParse("ldr x0, [x1, x2, lsl #3]");
  EXPECT_EQ(lsl.mem.mode, AddrMode::kRegLsl);
  EXPECT_EQ(lsl.mem.shift, 3);
  auto uxtw = MustParse("ldr x0, [x21, w2, uxtw]");
  EXPECT_EQ(uxtw.mem.mode, AddrMode::kRegUxtw);
  EXPECT_EQ(uxtw.mem.shift, 0);
  auto sxtw = MustParse("ldrb w0, [x1, w2, sxtw]");
  EXPECT_EQ(sxtw.mem.mode, AddrMode::kRegSxtw);
  EXPECT_EQ(sxtw.msize, 1);
}

TEST(Parser, LoadStoreVariants) {
  EXPECT_EQ(MustParse("ldrb w0, [x1]").msize, 1);
  EXPECT_EQ(MustParse("ldrh w0, [x1]").msize, 2);
  EXPECT_EQ(MustParse("ldr w0, [x1]").msize, 4);
  auto sw = MustParse("ldrsw x0, [x1]");
  EXPECT_EQ(sw.msize, 4);
  EXPECT_TRUE(sw.msigned);
  auto ldp = MustParse("ldp x29, x30, [sp], #32");
  EXPECT_EQ(ldp.mn, Mn::kLdp);
  EXPECT_EQ(ldp.mem.mode, AddrMode::kPostIndex);
  auto fp = MustParse("ldr d0, [x1, #8]");
  EXPECT_EQ(fp.mn, Mn::kLdrF);
  EXPECT_EQ(fp.msize, 8);
  auto q = MustParse("str q3, [x2]");
  EXPECT_EQ(q.mn, Mn::kStrF);
  EXPECT_EQ(q.msize, 16);
}

TEST(Parser, BranchesAndLabels) {
  auto b = ParseInst("b .Lloop");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->target, ".Lloop");
  auto bc = ParseInst("b.ne .Lexit");
  ASSERT_TRUE(bc.ok());
  EXPECT_EQ(bc->inst.cond, Cond::kNe);
  auto cbz = ParseInst("cbz w0, done");
  ASSERT_TRUE(cbz.ok());
  EXPECT_EQ(cbz->inst.rt, Reg::X(0));
  auto tbz = ParseInst("tbz x3, #63, skip");
  ASSERT_TRUE(tbz.ok());
  EXPECT_EQ(tbz->inst.bit, 63);
  auto ret = MustParse("ret");
  EXPECT_EQ(ret.rn, Reg::X(30));
}

TEST(Parser, RtcallPseudo) {
  auto s = ParseInst("rtcall #3");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->kind, AsmStmt::Kind::kRtcall);
  EXPECT_EQ(s->inst.imm, 3);
}

TEST(Parser, RejectsBadInput) {
  EXPECT_FALSE(ParseInst("frobnicate x0, x1").ok());
  EXPECT_FALSE(ParseInst("add x0").ok());
  EXPECT_FALSE(ParseInst("ldr x0, [x99]").ok());
  EXPECT_FALSE(ParseInst("mov x0, #1000000000000").ok());
  EXPECT_FALSE(ParseInst("add x0, x1, w2").ok());  // missing extend
}

TEST(Parser, FullFileWithSections) {
  const char* src = R"(
// comment
.globl _start
.text
_start:
  adrp x0, msg
  add x0, x0, :lo12:msg
  mov w1, #14
loop:
  subs w1, w1, #1
  b.ne loop
  ret
.data
msg:
  .asciz "hello, world\n"
counter:
  .quad 0
table:
  .quad loop, _start
.bss
buf:
  .zero 4096
)";
  auto f = Parse(src);
  ASSERT_TRUE(f.ok()) << f.error();
  int labels = 0, insts = 0, dirs = 0;
  for (const auto& s : f->stmts) {
    switch (s.kind) {
      case AsmStmt::Kind::kLabel: ++labels; break;
      case AsmStmt::Kind::kInst: ++insts; break;
      case AsmStmt::Kind::kDirective: ++dirs; break;
      default: break;
    }
  }
  EXPECT_EQ(labels, 6);
  EXPECT_EQ(insts, 6);
  EXPECT_GE(dirs, 7);
}

TEST(Printer, RoundTripsThroughParser) {
  const std::vector<std::string> lines = {
      "add x0, x1, #16",
      "add x18, x21, w7, uxtw",
      "add sp, x21, x22",
      "subs w2, w3, w4, lsr #5",
      "movz x9, #48879, lsl #16",
      "madd x1, x2, x3, x4",
      "csel x0, x1, x2, lt",
      "ldr x0, [x21, w2, uxtw]",
      "ldrsh x5, [sp, #18]",
      "str q1, [x23, #32]",
      "stp x29, x30, [sp, #-32]!",
      "ldp x29, x30, [sp], #32",
      "ldxr x0, [x18]",
      "stxr w1, x2, [x24]",
      "fmadd d0, d1, d2, d3",
      "fadd v0.4s, v1.4s, v2.4s",
      "scvtf d1, x2",
      "ret",
  };
  for (const auto& line : lines) {
    auto s1 = ParseInst(line);
    ASSERT_TRUE(s1.ok()) << line << ": " << s1.error();
    const std::string printed = PrintStmt(*s1);
    auto s2 = ParseInst(printed);
    ASSERT_TRUE(s2.ok()) << printed << ": " << s2.error();
    EXPECT_EQ(s1->inst, s2->inst) << line << " vs " << printed;
  }
}

TEST(Assemble, SimpleProgramLayout) {
  const char* src = R"(
.text
_start:
  adrp x0, msg
  add x0, x0, :lo12:msg
  b next
  nop
next:
  ret
.data
msg:
  .asciz "hi"
)";
  auto f = Parse(src);
  ASSERT_TRUE(f.ok()) << f.error();
  LayoutSpec spec;
  spec.text_offset = 0x20000;
  auto img = Assemble(*f, spec);
  ASSERT_TRUE(img.ok()) << img.error();
  EXPECT_EQ(img->text_addr, 0x20000u);
  EXPECT_EQ(img->text.size(), 20u);
  EXPECT_EQ(img->entry, 0x20000u);
  ASSERT_TRUE(img->symbols.count("msg"));
  EXPECT_EQ(img->symbols.at("msg"), img->data_addr);
  // The b should skip one instruction: offset +8.
  auto insts = arch::DecodeAll(img->text);
  ASSERT_TRUE(insts.ok()) << insts.error();
  EXPECT_EQ((*insts)[2].mn, Mn::kB);
  EXPECT_EQ((*insts)[2].imm, 8);
  // adrp's page offset must reach the data page.
  EXPECT_EQ((*insts)[0].mn, Mn::kAdrp);
  EXPECT_EQ(static_cast<uint64_t>((*insts)[0].imm),
            (img->data_addr & ~uint64_t{0xfff}) - 0x20000);
  // lo12 of msg.
  EXPECT_EQ((*insts)[1].imm,
            static_cast<int64_t>(img->data_addr & 0xfff));
}

TEST(Assemble, JumpTableSymbols) {
  const char* src = R"(
.text
a:
  nop
b:
  ret
.rodata
table:
  .quad a, b
  .word a
)";
  auto f = Parse(src);
  ASSERT_TRUE(f.ok()) << f.error();
  auto img = Assemble(*f, LayoutSpec{});
  ASSERT_TRUE(img.ok()) << img.error();
  ASSERT_EQ(img->rodata.size(), 20u);
  uint64_t e0 = 0, e1 = 0;
  for (int k = 0; k < 8; ++k) e0 |= uint64_t{img->rodata[k]} << (8 * k);
  for (int k = 0; k < 8; ++k) e1 |= uint64_t{img->rodata[8 + k]} << (8 * k);
  EXPECT_EQ(e0, img->symbols.at("a"));
  EXPECT_EQ(e1, img->symbols.at("b"));
}

TEST(Assemble, ErrorsOnUndefinedLabel) {
  auto f = Parse(".text\nb nowhere\n");
  ASSERT_TRUE(f.ok());
  auto img = Assemble(*f, LayoutSpec{});
  EXPECT_FALSE(img.ok());
}

TEST(Assemble, ErrorsOnUnexpandedRtcall) {
  auto f = Parse(".text\nrtcall #1\n");
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(Assemble(*f, LayoutSpec{}).ok());
}

TEST(Assemble, ErrorsOnDataInText) {
  auto f = Parse(".data\nnop\n");
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(Assemble(*f, LayoutSpec{}).ok());
}

}  // namespace
}  // namespace lfi::asmtext
