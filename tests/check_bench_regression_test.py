#!/usr/bin/env python3
"""Unit tests for tools/check_bench_regression.py exit-status contract.

The script guards BENCH_BASELINE.json in CI; the contract under test:

  * exit 0 when every gated metric is within tolerance;
  * exit 0 on out-of-tolerance drift in report-only mode, exit 1 with
    --strict (only .cycles/.bytes metrics gate);
  * exit 2 whenever a baseline metric is missing from the run, strict or
    not -- a silently vanished metric means a bench section stopped
    running or was renamed without regenerating the baseline, and
    report-only mode must not hide that.

Run via ctest (registered in tests/CMakeLists.txt) or directly; the
script path comes from $CHECK_SCRIPT, defaulting to the in-tree layout.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.environ.get(
    "CHECK_SCRIPT",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir,
                 "tools", "check_bench_regression.py"))


def run_check(baseline, current, *flags):
    """Writes the two dicts to temp files and runs the checker on them."""
    with tempfile.TemporaryDirectory() as d:
        bpath = os.path.join(d, "baseline.json")
        cpath = os.path.join(d, "current.json")
        with open(bpath, "w") as f:
            json.dump(baseline, f)
        with open(cpath, "w") as f:
            json.dump(current, f)
        proc = subprocess.run(
            [sys.executable, SCRIPT, bpath, cpath, *flags],
            capture_output=True, text=True)
    return proc


BASE = {
    "bench.a.cycles": 1000,
    "bench.a.overhead_pct": 5.0,
    "bench.b.bytes": 512,
    "bench.d.identical.exact": 1.0,
}


class CheckBenchRegressionTest(unittest.TestCase):
    def test_identical_run_passes(self):
        p = run_check(BASE, dict(BASE), "--strict")
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)
        self.assertIn("within tolerance", p.stdout)

    def test_drift_within_tolerance_passes_strict(self):
        cur = dict(BASE, **{"bench.a.cycles": 1050})  # +5% < 10%
        p = run_check(BASE, cur, "--strict")
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)

    def test_regression_reports_but_passes_without_strict(self):
        cur = dict(BASE, **{"bench.a.cycles": 2000})
        p = run_check(BASE, cur)
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)
        self.assertIn("REGRESSION", p.stdout)

    def test_regression_fails_with_strict(self):
        cur = dict(BASE, **{"bench.a.cycles": 2000})
        p = run_check(BASE, cur, "--strict")
        self.assertEqual(p.returncode, 1, p.stdout + p.stderr)

    def test_derived_metric_drift_never_gates(self):
        cur = dict(BASE, **{"bench.a.overhead_pct": 50.0})
        p = run_check(BASE, cur, "--strict")
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)

    def test_new_metric_passes(self):
        cur = dict(BASE, **{"bench.c.cycles": 7})
        p = run_check(BASE, cur, "--strict")
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)
        self.assertIn("(new)", p.stdout)

    def test_missing_metric_fails_without_strict(self):
        cur = dict(BASE)
        del cur["bench.b.bytes"]
        p = run_check(BASE, cur)
        self.assertEqual(p.returncode, 2, p.stdout + p.stderr)
        self.assertIn("MISSING", p.stdout)
        self.assertIn("bench.b.bytes", p.stdout)

    def test_missing_metric_fails_with_strict(self):
        cur = dict(BASE)
        del cur["bench.a.cycles"]
        p = run_check(BASE, cur, "--strict")
        self.assertEqual(p.returncode, 2, p.stdout + p.stderr)

    def test_missing_derived_metric_also_fails(self):
        # Coverage loss gates even for metrics whose *values* never gate.
        cur = dict(BASE)
        del cur["bench.a.overhead_pct"]
        p = run_check(BASE, cur)
        self.assertEqual(p.returncode, 2, p.stdout + p.stderr)

    def test_exact_metric_gates_with_zero_tolerance(self):
        # Any drift at all on a .exact metric is a regression, even with
        # a huge --tolerance.
        cur = dict(BASE, **{"bench.d.identical.exact": 0.0})
        p = run_check(BASE, cur)
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)
        self.assertIn("REGRESSION", p.stdout)
        p = run_check(BASE, cur, "--strict")
        self.assertEqual(p.returncode, 1, p.stdout + p.stderr)
        p = run_check(BASE, cur, "--strict", "--tolerance", "1000")
        self.assertEqual(p.returncode, 1, p.stdout + p.stderr)

    def test_exact_metric_identical_passes(self):
        p = run_check(BASE, dict(BASE), "--strict", "--tolerance", "0")
        self.assertEqual(p.returncode, 0, p.stdout + p.stderr)

    def test_tolerance_flag_respected(self):
        cur = dict(BASE, **{"bench.a.cycles": 1150})  # +15%
        self.assertEqual(run_check(BASE, cur, "--strict").returncode, 1)
        self.assertEqual(
            run_check(BASE, cur, "--strict", "--tolerance", "20").returncode,
            0)


if __name__ == "__main__":
    unittest.main()
