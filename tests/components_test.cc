// Component-level unit tests: cost model, cache/TLB models, VFS, layout
// arithmetic, and runtime error paths.

#include <gtest/gtest.h>

#include "arch/cost_model.h"
#include "emu/timing.h"
#include "pipeline_util.h"
#include "runtime/layout.h"
#include "runtime/runtime.h"
#include "runtime/vfs.h"

namespace lfi {
namespace {

using arch::Inst;
using arch::Mn;
using arch::Reg;
using arch::Width;

// --- Cost model ---

TEST(CostModel, GuardIsTwoCyclesHalfThroughput) {
  // The paper's observation that motivates all of Section 4.
  Inst guard;
  guard.mn = Mn::kAddExt;
  guard.ext = arch::Extend::kUxtw;
  const auto c = arch::CostOf(guard, arch::AppleM1LikeParams());
  EXPECT_EQ(c.latency, 2);
  EXPECT_EQ(c.slots, 2);
}

TEST(CostModel, PlainAddIsOneCycle) {
  Inst add;
  add.mn = Mn::kAddImm;
  const auto c = arch::CostOf(add, arch::AppleM1LikeParams());
  EXPECT_EQ(c.latency, 1);
  EXPECT_EQ(c.slots, 1);
}

TEST(CostModel, UxtxZeroShiftIsPlainAdd) {
  // `add sp, x21, x22` encodes as extended-uxtx-#0; must stay one cycle
  // (the whole point of staging through w22, Section 4.2).
  Inst i;
  i.mn = Mn::kAddExt;
  i.ext = arch::Extend::kUxtx;
  i.shift_amount = 0;
  EXPECT_EQ(arch::CostOf(i, arch::AppleM1LikeParams()).latency, 1);
}

TEST(CostModel, LoadsCostLoadLatencyOnBothCores) {
  Inst ldr;
  ldr.mn = Mn::kLdr;
  for (const auto& p :
       {arch::AppleM1LikeParams(), arch::GcpT2aLikeParams()}) {
    const auto c = arch::CostOf(ldr, p);
    EXPECT_EQ(c.latency, p.load_latency);
    EXPECT_TRUE(c.is_mem);
  }
}

TEST(CostModel, CoreParameterSanity) {
  const auto m1 = arch::AppleM1LikeParams();
  const auto t2a = arch::GcpT2aLikeParams();
  EXPECT_GT(m1.issue_width, t2a.issue_width);  // M1 is the wider core
  EXPECT_GT(m1.ghz, t2a.ghz);
  EXPECT_GT(m1.l1d_kib, t2a.l1d_kib);
}

// --- Cache model ---

TEST(CacheModel, HitsAfterInsert) {
  emu::CacheModel cache(64 * 1024, 8);
  EXPECT_FALSE(cache.Access(0x1000));
  EXPECT_TRUE(cache.Access(0x1000));
  EXPECT_TRUE(cache.Access(0x1020));  // same 64B line
  EXPECT_FALSE(cache.Access(0x1040));  // next line
}

TEST(CacheModel, LruEvictionWithinSet) {
  // 2-way, 2 sets: lines mapping to set 0 are multiples of 128.
  emu::CacheModel cache(256, 2);
  EXPECT_FALSE(cache.Access(0));
  EXPECT_FALSE(cache.Access(128));
  EXPECT_TRUE(cache.Access(0));
  EXPECT_FALSE(cache.Access(256));  // evicts 128 (LRU)
  EXPECT_TRUE(cache.Access(0));
  EXPECT_FALSE(cache.Access(128));
}

TEST(TlbModel, TracksPagesAndFlushes) {
  emu::TlbModel tlb(4);
  EXPECT_FALSE(tlb.Access(0x4000));
  EXPECT_TRUE(tlb.Access(0x4000));
  EXPECT_TRUE(tlb.Access(0x7fff));  // same 16KiB page
  tlb.Flush();
  EXPECT_FALSE(tlb.Access(0x4000));
}

// --- VFS ---

TEST(Vfs, CreateTruncAppendSemantics) {
  runtime::Vfs vfs;
  int err = 0;
  // ENOENT without O_CREAT.
  EXPECT_EQ(vfs.Open("/nope", runtime::kOpenRead, &err), nullptr);
  EXPECT_EQ(err, -2);
  // Create, write through the node, reopen with trunc.
  auto node = vfs.Open("/f", runtime::kOpenWrite | runtime::kOpenCreate,
                       &err);
  ASSERT_NE(node, nullptr);
  node->data = {1, 2, 3};
  auto again = vfs.Open("/f", runtime::kOpenRead, &err);
  EXPECT_EQ(again->data.size(), 3u);
  auto trunced =
      vfs.Open("/f", runtime::kOpenWrite | runtime::kOpenTrunc, &err);
  EXPECT_TRUE(trunced->data.empty());
}

TEST(Vfs, PolicyBlocksConfiguredPaths) {
  runtime::Vfs vfs;
  vfs.Install("/secret/key", std::string("k"));
  vfs.set_policy([](const std::string& path, int) {
    return path.rfind("/secret", 0) != 0;
  });
  int err = 0;
  EXPECT_EQ(vfs.Open("/secret/key", runtime::kOpenRead, &err), nullptr);
  EXPECT_EQ(err, -13);
  vfs.Install("/ok", std::string("fine"));
  EXPECT_NE(vfs.Open("/ok", runtime::kOpenRead, &err), nullptr);
}

// --- Layout arithmetic ---

TEST(Layout, SlotGeometryMatchesFigure1) {
  using namespace runtime;
  EXPECT_EQ(kSlotSize, uint64_t{4} * 1024 * 1024 * 1024);
  EXPECT_EQ(kGuardSize, uint64_t{48} * 1024);
  // Guard regions absorb the largest reachable immediate drift:
  // 2^15 (scaled imm) + 2^10 (pre/post-index) < 48KiB (footnote 1).
  EXPECT_GT(kGuardSize, uint64_t{1} << 15);
  EXPECT_GT(kGuardSize, (uint64_t{1} << 15) + (uint64_t{1} << 10));
  // Program area starts after the table page + guard.
  EXPECT_EQ(kProgramStart, kPage + kGuardSize);
  // Code must end 128MiB before the slot end (direct-branch reach).
  EXPECT_EQ(kSlotSize - kCodeEnd, uint64_t{128} << 20);
  // 65535 4GiB slots + the runtime's slot 0 fill the 48-bit space.
  EXPECT_EQ(SlotBase(kMaxSlots) + kSlotSize, uint64_t{1} << 48);
  // The paper's headline: ~64Ki sandboxes in the usermode address space.
  EXPECT_GE(kMaxSlots, uint64_t{64} * 1024 - 1);
}

// --- Runtime error paths ---

runtime::RuntimeConfig Cfg() {
  runtime::RuntimeConfig cfg;
  cfg.core = arch::AppleM1LikeParams();
  return cfg;
}

int RunAndStatus(const std::string& src) {
  runtime::Runtime rt(Cfg());
  auto e = test::BuildElf(src);
  EXPECT_TRUE(e.ok()) << e.error();
  auto pid = rt.Load({e->data(), e->size()});
  EXPECT_TRUE(pid.ok());
  rt.RunUntilIdle();
  return rt.proc(*pid)->exit_status;
}

TEST(RuntimeErrors, BadFdReturnsEbadf) {
  EXPECT_EQ(RunAndStatus(R"(
    mov x0, #55
    mov x1, #0
    mov x2, #0
    rtcall #1          // write to nonexistent fd
    rtcall #0          // exit(result)
  )"), -9);
}

TEST(RuntimeErrors, CloseTwiceFails) {
  EXPECT_EQ(RunAndStatus(R"(
    adrp x0, path
    add x0, x0, :lo12:path
    movz x1, #0x41     // create|write
    rtcall #3
    mov x9, x0
    mov x0, x9
    rtcall #4          // close: ok
    mov x0, x9
    rtcall #4          // close again: EBADF
    rtcall #0
  .data
  path:
    .asciz "/t"
  )"), -9);
}

TEST(RuntimeErrors, MunmapOfUnmappedRangeFails) {
  EXPECT_EQ(RunAndStatus(R"(
    movz x0, #0x1000, lsl #16
    movz x1, #0x4000
    rtcall #7          // munmap of something never mapped
    rtcall #0
  )"), -22);
}

TEST(RuntimeErrors, YieldToMissingPidFails) {
  EXPECT_EQ(RunAndStatus(R"(
    mov x0, #77
    rtcall #14
    rtcall #0
  )"), -3);
}

TEST(RuntimeErrors, ReadFromWriteOnlyFileFails) {
  EXPECT_EQ(RunAndStatus(R"(
    adrp x0, path
    add x0, x0, :lo12:path
    movz x1, #0x41
    rtcall #3
    // write to fd with read-only open flags is checked in SysWrite; here
    // exercise lseek on a bad fd instead.
    mov x0, #40
    mov x1, #0
    mov x2, #0
    rtcall #15
    rtcall #0
  .data
  path:
    .asciz "/t2"
  )"), -9);
}

TEST(RuntimeErrors, WaitWithNoChildrenReturnsEchild) {
  EXPECT_EQ(RunAndStatus(R"(
    mov x0, #0
    rtcall #9
    rtcall #0
  )"), -10);
}

TEST(Runtime, MmapExhaustionReturnsEnomem) {
  // A single mmap larger than the slot's free area must fail cleanly.
  EXPECT_EQ(RunAndStatus(R"(
    mov x0, #0
    movz x1, #0xffff, lsl #16   // ~4GiB
    movk x1, #0xffff
    rtcall #6
    cmp x0, #0
    b.lt failed
    mov x0, #0
    rtcall #0
  failed:
    rtcall #0
  )"), -12);
}

}  // namespace
}  // namespace lfi
