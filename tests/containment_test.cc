// Cross-sandbox containment: whatever a victim sandbox does (every
// CpuFault kind, under every fault policy) and whatever the chaos engine
// injects, sibling sandboxes must be bit-for-bit undisturbed — same exit
// status, same retired-instruction count — and the runtime itself must
// never abort.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "chaos/chaos.h"
#include "pipeline_util.h"
#include "runtime/runtime.h"

namespace lfi::runtime {
namespace {

RuntimeConfig TestConfig() {
  RuntimeConfig cfg;
  cfg.core = arch::AppleM1LikeParams();
  return cfg;
}

// The matrix victims are raw fault triggers (decode garbage, bare svc,
// unguarded misaligned branch), which can't pass verification; these runs
// model a verifier bypass, the worst case for containment.
RuntimeConfig NoVerifyConfig() {
  RuntimeConfig cfg = TestConfig();
  cfg.enforce_verification = false;
  return cfg;
}

// A deterministic sibling workload: its retired count depends only on its
// own instruction stream, never on scheduling.
constexpr const char* kSibling = R"(
    movz x19, #300
  loop:
    sub x19, x19, #1
    cbnz x19, loop
    movz x0, #0x51b
    rtcall #0
)";

std::vector<uint8_t> MustBuild(const std::string& src, bool rewrite) {
  auto e = test::BuildElf(src, rewrite);
  EXPECT_TRUE(e.ok()) << (e.ok() ? "" : e.error());
  return e.ok() ? *e : std::vector<uint8_t>{};
}

TEST(Containment, FaultMatrixLeavesSiblingUndisturbed) {
  struct VictimSpec {
    const char* name;
    const char* src;
  };
  static const VictimSpec kVictims[] = {
      {"memory",
       "movz x1, #0x4000\n"
       "add x18, x21, w1, uxtw\n"
       "ldr x0, [x18]\n"},
      {"decode", ".word 0xffffffff\n"},
      {"illegal", "svc #0\n"},
      {"pc-align",
       "mov x1, #3\n"
       "br x1\n"},
  };
  static const FaultAction kActions[] = {
      FaultAction::kKill, FaultAction::kSignal, FaultAction::kRestart};

  const std::vector<uint8_t> sibling_elf = MustBuild(kSibling, true);
  ASSERT_FALSE(sibling_elf.empty());

  // Fault-free reference: the sibling alone.
  uint64_t base_retired = 0;
  int base_status = 0;
  {
    Runtime rt(NoVerifyConfig());
    auto pid = rt.Load({sibling_elf.data(), sibling_elf.size()});
    ASSERT_TRUE(pid.ok());
    rt.RunUntilIdle();
    ASSERT_EQ(rt.proc(*pid)->exit_kind, ExitKind::kExited);
    base_retired = rt.proc(*pid)->insts_retired;
    base_status = rt.proc(*pid)->exit_status;
  }
  ASSERT_GT(base_retired, 0u);

  for (const VictimSpec& v : kVictims) {
    const std::vector<uint8_t> victim_elf = MustBuild(v.src, false);
    ASSERT_FALSE(victim_elf.empty()) << v.name;
    for (FaultAction action : kActions) {
      SCOPED_TRACE(std::string(v.name) + " / " + FaultActionName(action));
      Runtime rt(NoVerifyConfig());
      auto sib = rt.Load({sibling_elf.data(), sibling_elf.size()});
      auto vic = rt.Load({victim_elf.data(), victim_elf.size()});
      ASSERT_TRUE(sib.ok() && vic.ok());
      SupervisorPolicy pol;
      pol.on_fault = action;
      pol.restart_budget = 1;
      pol.restart_backoff_base_cycles = 100;
      rt.set_policy(*vic, pol);
      rt.RunUntilIdle();
      // The victim is contained: dead, with the fault recorded. (Signal
      // policy falls back to kill here — no handler was registered;
      // restart re-faults and exhausts its budget.)
      EXPECT_EQ(rt.proc(*vic)->exit_kind, ExitKind::kKilled);
      EXPECT_FALSE(rt.proc(*vic)->fault_detail.empty());
      if (action == FaultAction::kRestart) {
        EXPECT_EQ(rt.proc(*vic)->restarts, 1u);
      }
      // The sibling never noticed.
      EXPECT_EQ(rt.proc(*sib)->exit_kind, ExitKind::kExited);
      EXPECT_EQ(rt.proc(*sib)->exit_status, base_status);
      EXPECT_EQ(rt.proc(*sib)->insts_retired, base_retired);
    }
  }
}

// Three independent workloads for the chaos runs: one syscall-heavy (the
// designated victim), two pure-compute bystanders.
constexpr const char* kChaosVictim = R"(
    movz x19, #50
  aloop:
    mov x0, #0
    rtcall #5
    sub x19, x19, #1
    cbnz x19, aloop
    movz x20, #8000
  spin:
    sub x20, x20, #1
    cbnz x20, spin
    mov x0, #5
    rtcall #0
)";
constexpr const char* kBystanderB = R"(
    movz x19, #5000
  loop:
    sub x19, x19, #1
    cbnz x19, loop
    mov x0, #6
    rtcall #0
)";
constexpr const char* kBystanderC = R"(
    movz x19, #100
  loop:
    mov x0, #0
    rtcall #5
    sub x19, x19, #1
    cbnz x19, loop
    mov x0, #7
    rtcall #0
)";

struct ProcResult {
  ExitKind kind;
  int status;
  uint64_t retired;
  Disposition disposition;
  bool operator==(const ProcResult& o) const {
    return kind == o.kind && status == o.status && retired == o.retired &&
           disposition == o.disposition;
  }
};

std::vector<ProcResult> RunTrio(chaos::ChaosEngine* eng, int pinned_victim) {
  Runtime rt(TestConfig());
  if (eng != nullptr) rt.set_chaos(eng);
  std::vector<int> pids;
  for (const char* src : {kChaosVictim, kBystanderB, kBystanderC}) {
    auto elf = test::BuildElf(src, true);
    EXPECT_TRUE(elf.ok());
    auto pid = rt.Load({elf->data(), elf->size()});
    EXPECT_TRUE(pid.ok());
    pids.push_back(*pid);
  }
  if (eng != nullptr && pinned_victim >= 0) {
    eng->MarkVictim(pids[static_cast<size_t>(pinned_victim)]);
  }
  rt.RunUntilIdle(50'000'000);
  std::vector<ProcResult> out;
  for (int pid : pids) {
    const Proc* p = rt.proc(pid);
    out.push_back(
        {p->exit_kind, p->exit_status, p->insts_retired, p->disposition});
  }
  return out;
}

TEST(Containment, ChaosReplayIsDeterministic) {
  // Same seed + profile => identical outcome for every sandbox, down to
  // retired-instruction counts. This is the replay contract chaos debug
  // sessions rely on.
  chaos::ChaosEngine a(0x7e57ed, chaos::ProfileByName("storm"));
  chaos::ChaosEngine b(0x7e57ed, chaos::ProfileByName("storm"));
  const auto ra = RunTrio(&a, -1);
  const auto rb = RunTrio(&b, -1);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_TRUE(ra[i] == rb[i]) << "pid index " << i;
  }
}

TEST(Containment, ChaosSoakSparesUninjectedSandboxes) {
  // Pin the victim set to sandbox 0 and storm it. The un-injected
  // bystanders must retire exactly the chaos-free instruction stream and
  // exit with the same status; the runtime survives the whole soak.
  const auto clean = RunTrio(nullptr, -1);
  ASSERT_EQ(clean.size(), 3u);
  EXPECT_EQ(clean[1].kind, ExitKind::kExited);
  EXPECT_EQ(clean[2].kind, ExitKind::kExited);

  for (uint64_t seed : {1ull, 2ull, 3ull, 0xdeadbeefull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    chaos::ChaosEngine eng(seed, chaos::ProfileByName("storm"));
    const auto stormy = RunTrio(&eng, 0);
    ASSERT_EQ(stormy.size(), 3u);
    // Bystanders: bit-identical behavior (timestamps aside).
    for (size_t i : {size_t{1}, size_t{2}}) {
      EXPECT_EQ(stormy[i].kind, clean[i].kind) << i;
      EXPECT_EQ(stormy[i].status, clean[i].status) << i;
      EXPECT_EQ(stormy[i].retired, clean[i].retired) << i;
    }
    // The victim was contained whatever happened to it.
    EXPECT_TRUE(stormy[0].kind == ExitKind::kExited ||
                stormy[0].kind == ExitKind::kKilled);
  }
}

}  // namespace
}  // namespace lfi::runtime
