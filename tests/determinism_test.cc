// Determinism tests for the snapshot layer (docs/SNAPSHOTS.md): a sandbox
// instantiated from a snapshot image — even one that went through the
// on-disk format — must be indistinguishable at runtime from one freshly
// loaded from the ELF. The proof is byte equality of the Chrome trace
// JSON: every event timestamp comes from the simulated clock, so any
// divergence (an extra event, a cycle of drift, a different fault point)
// shows up as a string mismatch. The same must hold under chaos
// injection with mid-run snapshot restarts: the restore path may not
// perturb the replay contract. The final test extends the contract to
// the serving control plane's resilience stack — retry backoff jitter,
// breaker clocks, tenant-scoped chaos — across dispatch backends.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "embed/abi.h"
#include "embed/embed.h"
#include "pipeline_util.h"
#include "runtime/runtime.h"
#include "runtime/spawn_pool.h"
#include "serve/serve.h"
#include "snapshot/snapshot.h"
#include "trace/trace.h"

namespace lfi::runtime {
namespace {

RuntimeConfig TestConfig() {
  RuntimeConfig cfg;
  cfg.core = arch::AppleM1LikeParams();
  return cfg;
}

// Exercises fork, pipe transfer, several runtime calls, and both exits —
// a broad event surface for the trace comparison.
const char* kBusyProg = R"(
    adrp x0, fds
    add x0, x0, :lo12:fds
    rtcall #10          // pipe
    rtcall #8           // fork
    cbz x0, child
    adrp x9, fds
    add x9, x9, :lo12:fds
    ldr w0, [x9, #4]
    adrp x1, msg
    add x1, x1, :lo12:msg
    mov x2, #5
    rtcall #1           // write into the pipe
    adrp x0, status
    add x0, x0, :lo12:status
    rtcall #9           // wait for the child
    adrp x1, status
    add x1, x1, :lo12:status
    ldr w0, [x1]
    rtcall #0           // exit(child status)
  child:
    adrp x9, fds
    add x9, x9, :lo12:fds
    ldr w0, [x9]
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #5
    rtcall #2           // read from the pipe
    mov x0, #7
    rtcall #0
  .data
  fds:
    .word 0
    .word 0
  status:
    .word 0
  msg:
    .asciz "ping"
  buf:
    .zero 8
)";

// Syscall-heavy victim for the chaos runs: plenty of injection points.
const char* kChaosVictim = R"(
    movz x19, #50
  aloop:
    mov x0, #0
    rtcall #5
    sub x19, x19, #1
    cbnz x19, aloop
    movz x20, #8000
  spin:
    sub x20, x20, #1
    cbnz x20, spin
    mov x0, #5
    rtcall #0
)";

// Builds `src`, loads it in a scratch runtime, captures the post-load
// image, and round-trips it through the on-disk format so the test covers
// the whole pipeline a warm-spawn service would use.
std::shared_ptr<const snapshot::Snapshot> ImageOf(const std::string& src) {
  auto elf = test::BuildElf(src);
  EXPECT_TRUE(elf.ok()) << (elf.ok() ? "" : elf.error());
  if (!elf.ok()) return nullptr;
  Runtime rt(TestConfig());
  auto pid = rt.Load({elf->data(), elf->size()});
  EXPECT_TRUE(pid.ok()) << (pid.ok() ? "" : pid.error());
  if (!pid.ok()) return nullptr;
  auto snap = rt.CaptureSnapshot(*pid);
  EXPECT_TRUE(snap.ok()) << (snap.ok() ? "" : snap.error());
  if (!snap.ok()) return nullptr;
  const std::vector<uint8_t> bytes = snapshot::Serialize(*snap);
  auto back = snapshot::Deserialize({bytes.data(), bytes.size()});
  EXPECT_TRUE(back.ok()) << (back.ok() ? "" : back.error());
  if (!back.ok()) return nullptr;
  return std::make_shared<snapshot::Snapshot>(*std::move(back));
}

struct TraceRun {
  std::string json;
  ExitKind exit_kind = ExitKind::kRunning;
  int exit_status = 0;
  uint32_t restarts = 0;
};

// Runs one sandbox to completion with a trace sink attached and returns
// the rendered Chrome trace. `spawn` instantiates from the snapshot image;
// otherwise the ELF is loaded fresh. A chaos engine and a fault policy are
// attached when given.
TraceRun TracedRun(const std::string& src, bool spawn,
                   chaos::ChaosEngine* chaos = nullptr,
                   const SupervisorPolicy* policy = nullptr,
                   emu::Dispatch dispatch = emu::Dispatch::kChained) {
  TraceRun out;
  RuntimeConfig cfg = TestConfig();
  cfg.dispatch = dispatch;
  Runtime rt(cfg);
  trace::TraceSink sink;
  rt.set_trace_sink(&sink);
  if (chaos != nullptr) rt.set_chaos(chaos);

  int pid = -1;
  if (spawn) {
    auto snap = ImageOf(src);
    if (snap == nullptr) return out;
    auto p = rt.SpawnFromSnapshot(std::move(snap));
    EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error());
    if (!p.ok()) return out;
    pid = *p;
  } else {
    auto elf = test::BuildElf(src);
    EXPECT_TRUE(elf.ok()) << (elf.ok() ? "" : elf.error());
    if (!elf.ok()) return out;
    auto p = rt.Load({elf->data(), elf->size()});
    EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error());
    if (!p.ok()) return out;
    pid = *p;
  }
  if (policy != nullptr) rt.set_policy(pid, *policy);
  rt.RunUntilIdle(50'000'000);

  const Proc* p = rt.proc(pid);
  out.exit_kind = p->exit_kind;
  out.exit_status = p->exit_status;
  out.restarts = p->restarts;
  std::ostringstream ss;
  sink.WriteChromeTrace(ss, TestConfig().core.ghz, RtcallName);
  out.json = ss.str();
  return out;
}

TEST(Determinism, SpawnedTraceMatchesFreshLoadByteForByte) {
  // Fresh ELF load vs. snapshot spawn of the same program: instantiation
  // is invisible to the trace (no events, no cycles), both assign
  // pid 1 / slot 1, so the full runs must trace identically — fork, pipe
  // traffic, timeslices and all.
  const TraceRun fresh = TracedRun(kBusyProg, /*spawn=*/false);
  const TraceRun spawned = TracedRun(kBusyProg, /*spawn=*/true);
  ASSERT_EQ(fresh.exit_kind, ExitKind::kExited);
  EXPECT_EQ(fresh.exit_status, 7);
  EXPECT_EQ(spawned.exit_kind, fresh.exit_kind);
  EXPECT_EQ(spawned.exit_status, fresh.exit_status);
  ASSERT_FALSE(fresh.json.empty());
  EXPECT_EQ(spawned.json, fresh.json);
}

TEST(Determinism, DispatchBackendsTraceByteIdentically) {
  // The dispatch backend is a pure execution-speed knob: the chained
  // backend (block chaining + direct threading + memoized translation)
  // must produce the same Chrome trace, byte for byte, as the reference
  // block loop and the legacy step loop — every simulated timestamp,
  // every counter, every event. kBusyProg covers fork, pipes, waits and
  // both exit paths, so the equality spans context switches and fork
  // copies (which must not share chain state with their parent).
  const TraceRun chained = TracedRun(kBusyProg, /*spawn=*/false, nullptr,
                                     nullptr, emu::Dispatch::kChained);
  const TraceRun block = TracedRun(kBusyProg, /*spawn=*/false, nullptr,
                                   nullptr, emu::Dispatch::kBlock);
  const TraceRun step = TracedRun(kBusyProg, /*spawn=*/false, nullptr,
                                  nullptr, emu::Dispatch::kStep);
  ASSERT_EQ(chained.exit_kind, ExitKind::kExited);
  EXPECT_EQ(chained.exit_status, 7);
  ASSERT_FALSE(chained.json.empty());
  EXPECT_EQ(block.json, chained.json);
  EXPECT_EQ(step.json, chained.json);
}

TEST(Determinism, ChainedChaosRestartMatchesReferenceBackend) {
  // Chaos + restart policy under both backends: mid-run snapshot restores
  // rebuild machine state from pages, so the chained backend re-enters
  // with cold chains — and must still replay the exact same trace the
  // reference backend produces.
  SupervisorPolicy pol;
  pol.on_fault = FaultAction::kRestart;
  pol.restart_budget = 8;
  pol.restart_backoff_base_cycles = 100;
  uint32_t total_restarts = 0;
  for (uint64_t seed : {3ull, 4ull, 0xdeadbeefull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    chaos::ChaosEngine ca(seed, chaos::ProfileByName("storm"));
    chaos::ChaosEngine cb(seed, chaos::ProfileByName("storm"));
    const TraceRun chained = TracedRun(kChaosVictim, /*spawn=*/true, &ca,
                                       &pol, emu::Dispatch::kChained);
    const TraceRun block = TracedRun(kChaosVictim, /*spawn=*/true, &cb, &pol,
                                     emu::Dispatch::kBlock);
    ASSERT_FALSE(chained.json.empty());
    EXPECT_EQ(block.json, chained.json);
    EXPECT_EQ(block.restarts, chained.restarts);
    total_restarts += chained.restarts;
  }
  EXPECT_GT(total_restarts, 0u);
}

TEST(Determinism, SpawnedChaosRunMatchesFreshLoadUnderSameSeed) {
  // The replay contract extends through chaos injection and the restart
  // policy's snapshot restores: same seed + same image => byte-identical
  // traces whether the sandbox was loaded or spawned.
  SupervisorPolicy pol;
  pol.on_fault = FaultAction::kRestart;
  pol.restart_budget = 5;
  pol.restart_backoff_base_cycles = 100;
  for (uint64_t seed : {1ull, 2ull, 0x7e57edull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    chaos::ChaosEngine ca(seed, chaos::ProfileByName("storm"));
    chaos::ChaosEngine cb(seed, chaos::ProfileByName("storm"));
    const TraceRun fresh = TracedRun(kChaosVictim, /*spawn=*/false, &ca, &pol);
    const TraceRun spawned = TracedRun(kChaosVictim, /*spawn=*/true, &cb, &pol);
    ASSERT_FALSE(fresh.json.empty());
    EXPECT_EQ(spawned.json, fresh.json);
    EXPECT_EQ(spawned.restarts, fresh.restarts);
    EXPECT_EQ(spawned.exit_status, fresh.exit_status);
  }
}

TEST(Determinism, ChaosRestartReplayIsByteIdenticalAndRestoresFromSnapshot) {
  // Storm the victim hard enough to force mid-run restarts, twice with the
  // same seed: the traces must match byte for byte and must contain the
  // snapshot-restore events proving the restart path ran the new
  // machinery (not an ELF reload).
  SupervisorPolicy pol;
  pol.on_fault = FaultAction::kRestart;
  pol.restart_budget = 8;
  pol.restart_backoff_base_cycles = 100;
  uint32_t total_restarts = 0;
  for (uint64_t seed : {3ull, 4ull, 5ull, 0xdeadbeefull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    chaos::ChaosEngine ca(seed, chaos::ProfileByName("storm"));
    chaos::ChaosEngine cb(seed, chaos::ProfileByName("storm"));
    const TraceRun first = TracedRun(kChaosVictim, /*spawn=*/true, &ca, &pol);
    const TraceRun second = TracedRun(kChaosVictim, /*spawn=*/true, &cb, &pol);
    ASSERT_FALSE(first.json.empty());
    EXPECT_EQ(first.json, second.json);
    total_restarts += first.restarts;
    if (first.restarts > 0) {
      EXPECT_NE(first.json.find("snapshot-restore"), std::string::npos);
    }
  }
  // Across the seed set the storm must actually have triggered restarts,
  // or this test proves nothing.
  EXPECT_GT(total_restarts, 0u);
}

// Request handler for the serving runs: spins long enough that the storm
// profile below (fault gap well under the spin) hits nearly every
// victim-tenant attempt, then exits cleanly.
const char* kServeHandler = R"(
    movz x19, #2000
  spin:
    sub x19, x19, #1
    cbnz x19, spin
    mov x0, #0
    rtcall #0
)";

struct ServedRun {
  std::string trace_json;
  std::string transcript;
  uint64_t retried = 0;
};

// Runs the full serving control plane — warm pool, tenant-scoped chaos
// on tenant 0, deadline-aware retries, circuit breakers — under the given
// dispatch backend and returns the Chrome trace plus the canonical
// serving transcript.
ServedRun ServedRetryStorm(emu::Dispatch dispatch) {
  ServedRun out;
  RuntimeConfig cfg = TestConfig();
  cfg.dispatch = dispatch;
  Runtime rt(cfg);
  trace::TraceSink sink;
  rt.set_trace_sink(&sink);
  chaos::ChaosProfile profile;
  profile.name = "retry-storm";
  profile.cpu_faults = true;
  profile.min_fault_gap = 300;
  profile.max_fault_gap = 1500;
  chaos::ChaosEngine storm(0xfeed, profile);
  rt.set_chaos(&storm);

  auto elf = test::BuildElf(kServeHandler);
  EXPECT_TRUE(elf.ok()) << (elf.ok() ? "" : elf.error());
  if (!elf.ok()) return out;
  auto pid = rt.Load({elf->data(), elf->size()});
  EXPECT_TRUE(pid.ok()) << (pid.ok() ? "" : pid.error());
  if (!pid.ok()) return out;
  auto snap = rt.CaptureSnapshot(*pid);
  EXPECT_TRUE(snap.ok()) << (snap.ok() ? "" : snap.error());
  if (!snap.ok()) return out;
  EXPECT_TRUE(rt.Kill(*pid, "template").ok());
  SpawnPool pool(&rt,
                 std::make_shared<const snapshot::Snapshot>(*std::move(snap)));

  serve::ServeConfig scfg;
  scfg.traffic.seed = 606;
  scfg.traffic.requests = 60;
  scfg.traffic.tenants = 4;
  scfg.traffic.rate_per_mcycle = 200;
  scfg.tiers.resize(1);
  scfg.tiers[0].slo_cycles = 10000000;
  scfg.admission.max_queue_depth = 128;
  scfg.max_concurrency = 4;
  scfg.pool_min = 2;
  scfg.pool_max = 16;
  scfg.retry.budget = 2;
  scfg.retry.backoff_base_cycles = 5000;
  scfg.retry.backoff_cap_cycles = 50000;
  scfg.breaker.failure_threshold = 3;
  scfg.breaker.open_cycles = 200000;
  scfg.chaos = &storm;
  scfg.chaos_tenants = {0};
  serve::Server srv(&rt, scfg, &pool);
  const serve::ServeReport& rep = srv.Run();
  EXPECT_FALSE(rep.aborted);
  out.retried = rep.retried;
  out.transcript = rep.Format();
  std::ostringstream ss;
  sink.WriteChromeTrace(ss, TestConfig().core.ghz, RtcallName);
  out.trace_json = ss.str();
  return out;
}

TEST(Determinism, ServingRetryStormReplaysAcrossRunsAndBackends) {
  // The whole resilience stack — retry backoff jitter, breaker clocks,
  // tenant-scoped chaos victimhood — runs off the simulated clock and the
  // config seeds, so a full serving run under storm chaos must replay
  // byte-identically: same Chrome trace, same serving transcript, across
  // repeat runs AND across dispatch backends (the backend is a pure
  // execution-speed knob even with retries re-entering the queue).
  const ServedRun a = ServedRetryStorm(emu::Dispatch::kChained);
  const ServedRun b = ServedRetryStorm(emu::Dispatch::kChained);
  const ServedRun c = ServedRetryStorm(emu::Dispatch::kBlock);
  ASSERT_FALSE(a.trace_json.empty());
  EXPECT_GT(a.retried, 0u);  // the retry path actually ran
  EXPECT_EQ(b.trace_json, a.trace_json);
  EXPECT_EQ(b.transcript, a.transcript);
  EXPECT_EQ(c.trace_json, a.trace_json);
  EXPECT_EQ(c.transcript, a.transcript);
}

// A callback-heavy embedded workload over two sandboxes: typed calls,
// buffer marshalling, nested host->guest->host chains, a forged-return
// kill and a restart. Returns the Chrome trace plus the final simulated
// clock.
struct EmbedRun {
  std::string trace_json;
  uint64_t cycles = 0;
  std::vector<uint64_t> results;
};

EmbedRun EmbeddedWorkload(emu::Dispatch dispatch) {
  EmbedRun out;
  RuntimeConfig cfg = TestConfig();
  cfg.dispatch = dispatch;
  Runtime rt(cfg);
  trace::TraceSink sink;
  rt.set_trace_sink(&sink);

  const std::vector<embed::GuestExport> exports = {
      {"add", "eadd"}, {"echo", "eecho"}, {"sum", "esum"}, {"bad", "ebad"}};
  const char* body = R"(
eadd:
  add x0, x0, x1
  ret
eecho:
  hostcall #0
  add x0, x0, #1
  ret
esum:
  mov x9, x0
  mov x0, #0
  cbz x1, esum_done
esum_loop:
  ldrb w10, [x9]
  add x0, x0, x10
  add x9, x9, #1
  sub x1, x1, #1
  cbnz x1, esum_loop
esum_done:
  ret
ebad:
  add x19, x19, #1
  ret
)";
  auto elf = test::BuildElf(embed::GuestModuleSource(exports, body));
  EXPECT_TRUE(elf.ok()) << (elf.ok() ? "" : elf.error());
  if (!elf.ok()) return out;

  auto a = embed::Sandbox::Create(rt, {elf->data(), elf->size()});
  EXPECT_TRUE(a.ok()) << (a.ok() ? "" : a.error());
  if (!a.ok()) return out;
  auto b = embed::Sandbox::CreateFrom(**a);
  EXPECT_TRUE(b.ok()) << (b.ok() ? "" : b.error());
  if (!b.ok()) return out;

  // Callback 0 on sandbox a makes a nested call into sandbox b — a
  // cross-sandbox host->guest->host->guest chain.
  (*a)->BindCallback(
      0, std::function<uint64_t(uint64_t)>([&b](uint64_t x) {
        auto r = (*b)->Call<uint64_t(uint64_t, uint64_t)>("add", x, 100);
        return r.ok() ? r.value : ~0ull;
      }));
  (*b)->BindCallback(0, std::function<uint64_t(uint64_t)>(
                            [](uint64_t x) { return x * 3; }));

  for (uint64_t i = 0; i < 8; ++i) {
    auto r1 = (*a)->Call<uint64_t(uint64_t)>("echo", i);
    out.results.push_back(r1.ok() ? r1.value : ~0ull);
    auto r2 = (*b)->Call<uint64_t(uint64_t)>("echo", i * 7);
    out.results.push_back(r2.ok() ? r2.value : ~0ull);
    std::vector<uint8_t> buf(32 + i, static_cast<uint8_t>(i + 1));
    auto r3 = (*a)->Call<uint64_t(embed::BufIn, uint64_t)>(
        "sum", embed::BufIn{buf.data(), buf.size()}, buf.size());
    out.results.push_back(r3.ok() ? r3.value : ~0ull);
  }
  // Mid-run forged return + restart on one sandbox; the other continues.
  auto forged = (*a)->Call<uint64_t()>("bad");
  out.results.push_back(static_cast<uint64_t>(forged.err));
  EXPECT_TRUE((*a)->Restart().ok());
  auto after = (*a)->Call<uint64_t(uint64_t, uint64_t)>("add", 40, 2);
  out.results.push_back(after.ok() ? after.value : ~0ull);

  out.cycles = rt.Cycles();
  std::ostringstream ss;
  sink.WriteChromeTrace(ss, TestConfig().core.ghz, RtcallName);
  out.trace_json = ss.str();
  return out;
}

TEST(Determinism, EmbedCallsReplayAcrossBackends) {
  // Embedded transitions are charged on the simulated clock with
  // deterministic cookies, so a multi-sandbox callback-heavy run — typed
  // calls, buffer marshalling, cross-sandbox nested chains, a mid-run
  // forged-return kill and restart — must replay byte-identically across
  // all three dispatch backends: same Chrome trace, same cycle count,
  // same results.
  const EmbedRun chained = EmbeddedWorkload(emu::Dispatch::kChained);
  const EmbedRun block = EmbeddedWorkload(emu::Dispatch::kBlock);
  const EmbedRun step = EmbeddedWorkload(emu::Dispatch::kStep);
  ASSERT_FALSE(chained.trace_json.empty());
  ASSERT_EQ(chained.results.size(), 8u * 3 + 2);
  // Spot-check the workload actually computed: echo(i) = 2i+101 through
  // the cross-sandbox chain, echo_b(x) = 3x+1.
  EXPECT_EQ(chained.results[0], 101u);
  EXPECT_EQ(chained.results[1], 1u);
  EXPECT_GT(chained.cycles, 0u);
  EXPECT_EQ(block.trace_json, chained.trace_json);
  EXPECT_EQ(block.cycles, chained.cycles);
  EXPECT_EQ(block.results, chained.results);
  EXPECT_EQ(step.trace_json, chained.trace_json);
  EXPECT_EQ(step.cycles, chained.cycles);
  EXPECT_EQ(step.results, chained.results);
}

}  // namespace
}  // namespace lfi::runtime
