// Differential tests: the emulator's arithmetic/flags semantics checked
// against host-computed references over randomized inputs, and
// never-crash fuzzing of the untrusted-input front ends (parser, ELF
// reader).

#include <gtest/gtest.h>

#include "asmtext/parser.h"
#include "elf/elf.h"
#include "emu/machine.h"
#include "asmtext/assemble.h"
#include "fuzz_util.h"

namespace lfi {
namespace {

using test::Rng;

// Runs one `subs`/`adds` with the given operands and returns (result,
// NZCV) from the emulator.
struct FlagResult {
  uint64_t result;
  bool n, z, c, v;
};

FlagResult RunFlags(bool sub, bool wide, uint64_t a, uint64_t b) {
  emu::AddressSpace space;
  emu::Machine machine(&space, arch::AppleM1LikeParams());
  // subs x0, x1, x2 ; brk
  std::string src = std::string(sub ? "subs " : "adds ") +
                    (wide ? "x0, x1, x2" : "w0, w1, w2") + "\nbrk #0\n";
  auto f = asmtext::Parse(src);
  EXPECT_TRUE(f.ok());
  asmtext::LayoutSpec spec;
  spec.text_offset = 0x100000;
  auto img = asmtext::Assemble(*f, spec);
  EXPECT_TRUE(img.ok());
  EXPECT_TRUE(
      space.Map(0x100000, 0x4000, emu::kPermRead | emu::kPermExec).ok());
  EXPECT_TRUE(space
                  .HostWrite(img->text_addr,
                             {img->text.data(), img->text.size()})
                  .ok());
  machine.state().pc = img->entry;
  machine.state().x[1] = a;
  machine.state().x[2] = b;
  EXPECT_EQ(machine.Run(10), emu::StopReason::kBrk);
  const auto& s = machine.state();
  return {s.x[0], s.n, s.z, s.c, s.v};
}

TEST(Differential, AddsFlags64AgainstHost) {
  Rng rng(0xabcdef);
  for (int k = 0; k < 300; ++k) {
    const uint64_t a = rng.Next();
    const uint64_t b = rng.Next();
    const FlagResult r = RunFlags(false, true, a, b);
    const uint64_t expect = a + b;
    EXPECT_EQ(r.result, expect);
    EXPECT_EQ(r.n, (expect >> 63) != 0);
    EXPECT_EQ(r.z, expect == 0);
    EXPECT_EQ(r.c, expect < a);  // unsigned carry-out
    int64_t signed_sum;
    EXPECT_EQ(r.v, __builtin_add_overflow(static_cast<int64_t>(a),
                                          static_cast<int64_t>(b),
                                          &signed_sum));
  }
}

TEST(Differential, SubsFlags64AgainstHost) {
  Rng rng(0x123987);
  for (int k = 0; k < 300; ++k) {
    const uint64_t a = rng.Next();
    const uint64_t b = rng.Next();
    const FlagResult r = RunFlags(true, true, a, b);
    const uint64_t expect = a - b;
    EXPECT_EQ(r.result, expect);
    EXPECT_EQ(r.n, (expect >> 63) != 0);
    EXPECT_EQ(r.z, expect == 0);
    EXPECT_EQ(r.c, a >= b);  // no-borrow
    int64_t signed_diff;
    EXPECT_EQ(r.v, __builtin_sub_overflow(static_cast<int64_t>(a),
                                          static_cast<int64_t>(b),
                                          &signed_diff));
  }
}

TEST(Differential, SubsFlags32AgainstHost) {
  Rng rng(0x555);
  for (int k = 0; k < 300; ++k) {
    const uint32_t a = static_cast<uint32_t>(rng.Next());
    const uint32_t b = static_cast<uint32_t>(rng.Next());
    const FlagResult r = RunFlags(true, false, a, b);
    const uint32_t expect = a - b;
    EXPECT_EQ(r.result, expect);  // zero-extended into x0
    EXPECT_EQ(r.n, (expect >> 31) != 0);
    EXPECT_EQ(r.z, expect == 0);
    EXPECT_EQ(r.c, a >= b);
    int32_t signed_diff;
    EXPECT_EQ(r.v, __builtin_sub_overflow(static_cast<int32_t>(a),
                                          static_cast<int32_t>(b),
                                          &signed_diff));
  }
}

TEST(Differential, EdgeOperandsExact) {
  struct Edge {
    uint64_t a, b;
  };
  const Edge edges[] = {
      {0, 0},
      {~uint64_t{0}, 1},
      {uint64_t{1} << 63, uint64_t{1} << 63},
      {(uint64_t{1} << 63) - 1, 1},
      {uint64_t{1} << 63, 1},
      {~uint64_t{0}, ~uint64_t{0}},
  };
  for (const auto& e : edges) {
    for (bool sub : {false, true}) {
      const FlagResult r = RunFlags(sub, true, e.a, e.b);
      const uint64_t expect = sub ? e.a - e.b : e.a + e.b;
      EXPECT_EQ(r.result, expect) << e.a << (sub ? " - " : " + ") << e.b;
    }
  }
}

TEST(Fuzz, ParserNeverCrashesOnGarbage) {
  Rng rng(0x7777);
  const char charset[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 ,.#[]!:-+\"\\\nxwspqdv";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string src;
    const int len = 1 + static_cast<int>(rng.Next() % 120);
    for (int k = 0; k < len; ++k) {
      src.push_back(charset[rng.Next() % (sizeof(charset) - 1)]);
    }
    auto r = asmtext::Parse(src);  // must not crash; result irrelevant
    (void)r;
  }
}

TEST(Fuzz, ParserNeverCrashesOnMutatedValidSource) {
  const std::string base = R"(
.globl _start
.text
_start:
  mov x0, #1
  adrp x1, msg
  add x1, x1, :lo12:msg
  ldr x2, [x1, #8]
  stp x29, x30, [sp, #-16]!
  b done
done:
  ret
.data
msg:
  .asciz "hi"
)";
  Rng rng(0x9999);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string src = base;
    const int flips = 1 + static_cast<int>(rng.Next() % 6);
    for (int k = 0; k < flips; ++k) {
      src[rng.Next() % src.size()] =
          static_cast<char>(' ' + rng.Next() % 95);
    }
    auto r = asmtext::Parse(src);
    if (r.ok()) {
      // If it still parses, it must also assemble-or-fail cleanly.
      asmtext::LayoutSpec spec;
      auto img = asmtext::Assemble(*r, spec);
      (void)img;
    }
  }
}

TEST(Fuzz, ElfReaderNeverCrashesOnMutatedBinaries) {
  auto f = asmtext::Parse(".text\n_start:\nnop\nret\n.data\nv:\n.quad 1\n");
  ASSERT_TRUE(f.ok());
  asmtext::LayoutSpec spec;
  auto img = asmtext::Assemble(*f, spec);
  ASSERT_TRUE(img.ok());
  const std::vector<uint8_t> good = elf::Write(elf::FromAssembled(*img));
  Rng rng(0x2468);
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<uint8_t> bytes = good;
    const int flips = 1 + static_cast<int>(rng.Next() % 8);
    for (int k = 0; k < flips; ++k) {
      bytes[rng.Next() % bytes.size()] = static_cast<uint8_t>(rng.Next());
    }
    // Also sometimes truncate.
    if (rng.Next() % 4 == 0) {
      bytes.resize(rng.Next() % (bytes.size() + 1));
    }
    auto r = elf::Read({bytes.data(), bytes.size()});
    (void)r;  // must not crash or over-read
  }
}

}  // namespace
}  // namespace lfi
