// ELF writer/reader tests.

#include <gtest/gtest.h>

#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "elf/elf.h"

namespace lfi::elf {
namespace {

ElfImage SampleImage() {
  ElfImage img;
  img.entry = 0x10000;
  img.segments.push_back(
      {0x10000, {0x1f, 0x20, 0x03, 0xd5}, 4, true, false, true});
  img.segments.push_back({0x20000, {1, 2, 3}, 3, true, false, false});
  Segment data;
  data.vaddr = 0x30000;
  data.data = {9, 8, 7, 6};
  data.memsz = 4096;  // trailing bss
  data.write = true;
  img.segments.push_back(data);
  return img;
}

TEST(Elf, WriteReadRoundTrip) {
  const ElfImage in = SampleImage();
  const std::vector<uint8_t> bytes = Write(in);
  auto out = Read({bytes.data(), bytes.size()});
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_EQ(out->entry, in.entry);
  ASSERT_EQ(out->segments.size(), 3u);
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(out->segments[k].vaddr, in.segments[k].vaddr);
    EXPECT_EQ(out->segments[k].data, in.segments[k].data);
    EXPECT_EQ(out->segments[k].memsz, in.segments[k].memsz);
    EXPECT_EQ(out->segments[k].exec, in.segments[k].exec);
    EXPECT_EQ(out->segments[k].write, in.segments[k].write);
  }
}

TEST(Elf, RejectsCorruptInput) {
  const ElfImage in = SampleImage();
  std::vector<uint8_t> bytes = Write(in);
  // Bad magic.
  {
    auto bad = bytes;
    bad[0] = 0;
    EXPECT_FALSE(Read({bad.data(), bad.size()}).ok());
  }
  // Wrong machine.
  {
    auto bad = bytes;
    bad[18] = 0x3e;  // x86-64
    EXPECT_FALSE(Read({bad.data(), bad.size()}).ok());
  }
  // Truncated.
  EXPECT_FALSE(Read({bytes.data(), 32}).ok());
  // Segment pointing out of bounds.
  {
    auto bad = bytes;
    // p_offset of first phdr at 64 + 8.
    bad[64 + 8] = 0xff;
    bad[64 + 9] = 0xff;
    bad[64 + 10] = 0xff;
    EXPECT_FALSE(Read({bad.data(), bad.size()}).ok());
  }
}

TEST(Elf, FromAssembledBuildsExpectedSegments) {
  auto f = asmtext::Parse(R"(
.text
_start:
  nop
  ret
.data
v:
  .quad 42
.bss
buf:
  .zero 100
)");
  ASSERT_TRUE(f.ok());
  asmtext::LayoutSpec spec;
  auto img = asmtext::Assemble(*f, spec);
  ASSERT_TRUE(img.ok());
  const ElfImage e = FromAssembled(*img);
  ASSERT_EQ(e.segments.size(), 2u);  // text + data(+bss)
  EXPECT_TRUE(e.segments[0].exec);
  EXPECT_FALSE(e.segments[0].write);
  EXPECT_TRUE(e.segments[1].write);
  // data+bss memsz spans through the end of bss.
  EXPECT_GE(e.segments[1].memsz, 8u + 100u);
}

}  // namespace
}  // namespace lfi::elf
