// Re-entrancy and fault interaction for the embedding API: nested
// host->guest->host->guest chains unwind exactly (one saved context per
// depth), the depth bound fails closed, a guest fault — organic or
// chaos-injected — mid-Call kills the guest cleanly and the sandbox
// restarts from its baseline, and a forged callback-return frame (a
// cookie the runtime never planted) is rejected.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "embed/abi.h"
#include "embed/embed.h"
#include "pipeline_util.h"
#include "runtime/runtime.h"

namespace lfi::embed {
namespace {

runtime::RuntimeConfig TestConfig() {
  runtime::RuntimeConfig cfg;
  cfg.core = arch::AppleM1LikeParams();
  return cfg;
}

std::string ReentryModule() {
  const std::vector<GuestExport> exports = {
      {"identity", "identity"}, {"recurse", "recurse"}, {"echo", "echo_cb"},
      {"clobber", "clobber"},   {"fault", "fault"},     {"exit", "do_exit"},
      {"burn", "burn"},         {"reready", "reready"}, {"block", "block"},
      {"sys", "sys"},
  };
  const char* body = R"(
identity:
  ret
recurse:
  hostcall #1
  ret
echo_cb:
  hostcall #0
  add x0, x0, #1
  ret
clobber:
  add x19, x19, #1
  ret
fault:
  movz x9, #0x5000
  ldr x9, [x9]
  ret
do_exit:
  mov x0, #9
  rtcall #0
burn:
  movz x9, #60000
burn_loop:
  sub x9, x9, #1
  cbnz x9, burn_loop
  mov x0, #1
  ret
reready:
  rtcall #20
  ret
block:
  adrp x0, fds
  add x0, x0, :lo12:fds
  rtcall #10
  adrp x9, fds
  add x9, x9, :lo12:fds
  ldr w0, [x9]
  adrp x1, rbuf
  add x1, x1, :lo12:rbuf
  mov x2, #4
  rtcall #2
  ret
sys:
  mov x0, #0
  rtcall #5
  mov x0, #42
  ret
.data
fds:
  .word 0
  .word 0
rbuf:
  .zero 8
)";
  return GuestModuleSource(exports, body);
}

class EmbedReentryTest : public ::testing::Test {
 protected:
  void Make(Sandbox::Options opts = Sandbox::Options{}) {
    auto elf = test::BuildElf(ReentryModule());
    ASSERT_TRUE(elf.ok()) << elf.error();
    rt_ = std::make_unique<runtime::Runtime>(TestConfig());
    auto sb = Sandbox::Create(*rt_, {elf->data(), elf->size()}, opts);
    ASSERT_TRUE(sb.ok()) << sb.error();
    sb_ = std::move(*sb);
  }

  // Callback 1: recurse(n) = n + recurse(n-1) through a fresh guest call
  // per level. Records the depth the embedding layer reports at each
  // level and any nested-call error.
  void BindRecursion() {
    sb_->BindCallback(
        1, std::function<int64_t(int64_t)>([this](int64_t n) -> int64_t {
          depths_.push_back(sb_->depth());
          if (n <= 0) return 0;
          auto r = sb_->Call<int64_t(int64_t)>("recurse", n - 1);
          if (!r.ok()) {
            nested_err_ = r.err;
            return -1000;
          }
          return r.value + n;
        }));
  }

  std::unique_ptr<runtime::Runtime> rt_;
  std::unique_ptr<Sandbox> sb_;
  std::vector<int> depths_;
  Err nested_err_ = Err::kNone;
};

TEST_F(EmbedReentryTest, NestedChainsUnwindExactly) {
  Make();
  BindRecursion();
  auto r = sb_->Call<int64_t(int64_t)>("recurse", 5);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.value, 5 + 4 + 3 + 2 + 1);
  // One callback per level; depth as seen inside the callback climbs
  // 1, 2, ..., 6 (outermost call is depth 1).
  ASSERT_EQ(depths_.size(), 6u);
  for (size_t i = 0; i < depths_.size(); ++i) {
    EXPECT_EQ(depths_[i], static_cast<int>(i) + 1);
  }
  EXPECT_EQ(sb_->depth(), 0);
  EXPECT_TRUE(sb_->alive());
  // The chain left the sandbox reusable.
  auto again = sb_->Call<int64_t(int64_t)>("recurse", 2);
  ASSERT_TRUE(again.ok()) << again.detail;
  EXPECT_EQ(again.value, 3);
}

TEST_F(EmbedReentryTest, DepthBoundFailsClosed) {
  Sandbox::Options opts;
  opts.max_depth = 3;
  Make(opts);
  BindRecursion();
  auto r = sb_->Call<int64_t(int64_t)>("recurse", 10);
  // The chain bottoms out at depth 3: the nested Call at that depth
  // reports kReentry, the callback substitutes its sentinel, and the
  // outer levels unwind normally.
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(nested_err_, Err::kReentry);
  EXPECT_LT(r.value, 0);
  EXPECT_EQ(sb_->depth(), 0);
  EXPECT_TRUE(sb_->alive());
}

TEST_F(EmbedReentryTest, ForgedReturnCookieIsRejected) {
  Make();
  // clobber increments the callee-saved cookie register before returning
  // through the stub: the runtime must refuse the forged frame and kill.
  auto r = sb_->Call<uint64_t()>("clobber");
  EXPECT_EQ(r.err, Err::kForgedReturn);
  EXPECT_FALSE(sb_->alive());
  ASSERT_TRUE(sb_->Restart().ok());
  auto again = sb_->Call<uint64_t(uint64_t)>("identity", 8);
  ASSERT_TRUE(again.ok()) << again.detail;
  EXPECT_EQ(again.value, 8u);
}

TEST_F(EmbedReentryTest, GuestFaultMidCallUnwindsAndRestarts) {
  Make();
  auto r = sb_->Call<uint64_t()>("fault");
  EXPECT_EQ(r.err, Err::kGuestFault);
  EXPECT_FALSE(r.detail.empty());
  EXPECT_FALSE(sb_->alive());
  EXPECT_EQ(sb_->depth(), 0);
  ASSERT_TRUE(sb_->Restart().ok());
  auto again = sb_->Call<uint64_t(uint64_t)>("identity", 5);
  ASSERT_TRUE(again.ok()) << again.detail;
  EXPECT_EQ(again.value, 5u);
}

TEST_F(EmbedReentryTest, GuestFaultInsideNestedChainUnwindsEveryLevel) {
  Make();
  Err inner = Err::kNone;
  sb_->BindCallback(1, std::function<int64_t(int64_t)>(
                           [&](int64_t) -> int64_t {
                             auto f = sb_->Call<uint64_t()>("fault");
                             inner = f.err;
                             return -1;
                           }));
  auto r = sb_->Call<int64_t(int64_t)>("recurse", 1);
  // The fault killed the guest while two calls were active: the inner
  // Call reports the fault, and the outer call — whose guest context died
  // with the sandbox — fails too instead of pretending to return.
  EXPECT_EQ(inner, Err::kGuestFault);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(sb_->depth(), 0);
  ASSERT_TRUE(sb_->Restart().ok());
  auto again = sb_->Call<uint64_t(uint64_t)>("identity", 2);
  EXPECT_TRUE(again.ok()) << again.detail;
}

TEST_F(EmbedReentryTest, ChaosInjectedKillMidCallIsAFaultAndRestartable) {
  Make();
  chaos::ChaosEngine eng(0xc4a05, chaos::ProfileByName("memfault"));
  eng.MarkVictim(sb_->pid());
  rt_->set_chaos(&eng);
  // burn retires ~120k instructions; the memfault profile injects within
  // 20k, so the call cannot complete organically.
  auto r = sb_->Call<uint64_t()>("burn");
  EXPECT_EQ(r.err, Err::kGuestFault);
  EXPECT_NE(r.detail.find("[chaos]"), std::string::npos) << r.detail;
  EXPECT_FALSE(sb_->alive());
  rt_->set_chaos(nullptr);
  ASSERT_TRUE(sb_->Restart().ok());
  auto again = sb_->Call<uint64_t()>("burn");
  ASSERT_TRUE(again.ok()) << again.detail;
  EXPECT_EQ(again.value, 1u);
}

TEST_F(EmbedReentryTest, GuestExitMidCallSurfacesAsGuestExited) {
  Make();
  auto r = sb_->Call<uint64_t()>("exit");
  EXPECT_EQ(r.err, Err::kGuestExited);
  EXPECT_NE(r.detail.find("9"), std::string::npos) << r.detail;
  EXPECT_FALSE(sb_->alive());
  ASSERT_TRUE(sb_->Restart().ok());
  EXPECT_TRUE(sb_->alive());
}

TEST_F(EmbedReentryTest, GuestBlockingMidCallFailsClosed) {
  Make();
  // block reads from an empty pipe it just created: nothing can ever wake
  // it inside an embedded call, so the runtime kills it.
  auto r = sb_->Call<uint64_t()>("block");
  EXPECT_EQ(r.err, Err::kGuestBlocked);
  EXPECT_FALSE(sb_->alive());
  ASSERT_TRUE(sb_->Restart().ok());
}

TEST_F(EmbedReentryTest, EmbedReadyMidCallIsAProtocolViolation) {
  Make();
  // A second embed-ready announce during a call is a forged protocol
  // transition (e.g. a guest trying to re-run table parsing).
  auto r = sb_->Call<uint64_t()>("reready");
  EXPECT_EQ(r.err, Err::kProtocol);
  EXPECT_FALSE(sb_->alive());
  ASSERT_TRUE(sb_->Restart().ok());
}

TEST_F(EmbedReentryTest, OrdinaryRuntimeCallsStillWorkMidCall) {
  Make();
  auto r = sb_->Call<uint64_t()>("sys");
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.value, 42u);
  EXPECT_TRUE(sb_->alive());
}

TEST_F(EmbedReentryTest, RestartInsideACallbackIsRefused) {
  Make();
  Status st = Status::Ok();
  sb_->BindCallback(0, std::function<uint64_t(uint64_t)>([&](uint64_t x) {
                      st = sb_->Restart();
                      return x;
                    }));
  auto r = sb_->Call<uint64_t(uint64_t)>("echo", 1);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace lfi::embed
