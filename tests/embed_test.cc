// Call-ABI matrix for the typed embedding API (docs/EMBEDDING.md): every
// marshalling class — integer widths and signs, float/double register
// args, guest pointers, in/out buffers, >8-argument stack spills — in
// both directions, plus the adversarial cases: a guest returning a
// host-range pointer, a hostcall to an unbound slot, a marshalled buffer
// that would straddle the slot boundary. Each hostile case must fail
// closed with its own distinct Err value.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "embed/abi.h"
#include "embed/embed.h"
#include "pipeline_util.h"
#include "runtime/runtime.h"

namespace lfi::embed {
namespace {

runtime::RuntimeConfig TestConfig() {
  runtime::RuntimeConfig cfg;
  cfg.core = arch::AppleM1LikeParams();
  return cfg;
}

// One module covering the whole matrix. Function bodies deliberately use
// plain unguarded assembly — the rewriter instruments them like any other
// guest code.
std::string MatrixModule() {
  const std::vector<GuestExport> exports = {
      {"identity", "identity"}, {"add3", "add3"},     {"sum10", "sum10"},
      {"fadd_s", "fadd_s"},     {"fadd_d", "fadd_d"}, {"fbits", "fbits"},
      {"mix", "mix"},           {"sum_buf", "sum_buf"},
      {"fill", "fill_buf"},     {"bufaddr", "bufaddr"},
      {"deref", "deref"},       {"store64", "store64"},
      {"wildptr", "wild_ptr"},  {"echo", "echo_cb"},  {"badcb", "bad_cb"},
      {"spin", "spin"},
  };
  const char* body = R"(
identity:
  ret
add3:
  add x0, x0, x1
  add x0, x0, x2
  ret
sum10:
  add x0, x0, x1
  add x0, x0, x2
  add x0, x0, x3
  add x0, x0, x4
  add x0, x0, x5
  add x0, x0, x6
  add x0, x0, x7
  ldr x9, [sp]
  add x0, x0, x9
  ldr x9, [sp, #8]
  add x0, x0, x9
  ret
fadd_s:
  fadd s0, s0, s1
  ret
fadd_d:
  fadd d0, d0, d1
  ret
fbits:
  fmov x0, d0
  ret
mix:
  fmov x9, d1
  add x0, x0, x9
  ret
sum_buf:
  mov x9, x0
  mov x0, #0
  cbz x1, sum_done
sum_loop:
  ldrb w10, [x9]
  add x0, x0, x10
  add x9, x9, #1
  sub x1, x1, #1
  cbnz x1, sum_loop
sum_done:
  ret
fill_buf:
  cbz x1, fill_done
fill_loop:
  strb w2, [x0]
  add x0, x0, #1
  sub x1, x1, #1
  cbnz x1, fill_loop
fill_done:
  mov x0, #0
  ret
bufaddr:
  ret
deref:
  ldr x0, [x0]
  ret
store64:
  str x1, [x0]
  mov x0, #0
  ret
wild_ptr:
  movz x0, #0xdead, lsl #48
  ret
echo_cb:
  hostcall #0
  add x0, x0, #1
  ret
bad_cb:
  hostcall #7
  ret
spin:
  b spin
)";
  return GuestModuleSource(exports, body);
}

class EmbedTest : public ::testing::Test {
 protected:
  void Make(Sandbox::Options opts = Sandbox::Options{}) {
    auto elf = test::BuildElf(MatrixModule());
    ASSERT_TRUE(elf.ok()) << elf.error();
    rt_ = std::make_unique<runtime::Runtime>(TestConfig());
    auto sb = Sandbox::Create(*rt_, {elf->data(), elf->size()}, opts);
    ASSERT_TRUE(sb.ok()) << sb.error();
    sb_ = std::move(*sb);
  }

  std::unique_ptr<runtime::Runtime> rt_;
  std::unique_ptr<Sandbox> sb_;
};

TEST_F(EmbedTest, ExportsParsedInTableOrder) {
  Make();
  const auto names = sb_->Exports();
  ASSERT_EQ(names.size(), 16u);
  EXPECT_EQ(names[0], "identity");
  EXPECT_EQ(names[7], "sum_buf");
  EXPECT_TRUE(sb_->Fn("deref").ok());
  EXPECT_FALSE(sb_->Fn("nope").ok());
}

// ---- Integer widths and signs ----

TEST_F(EmbedTest, UnsignedIntegersWrapAt64Bits) {
  Make();
  const uint64_t a = 0xffffffffffffff00ull;
  auto r = sb_->Call<uint64_t(uint64_t, uint64_t, uint64_t)>("add3", a, 0xff,
                                                             1);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.value, a + 0xff + 1);
}

TEST_F(EmbedTest, SignedNarrowArgsAreSignExtended) {
  Make();
  // int32_t -5 must arrive in the guest register as the 64-bit -5, so a
  // 64-bit add with +7 lands on exactly 2.
  auto r = sb_->Call<int64_t(int32_t, int64_t, int64_t)>("add3",
                                                         int32_t{-5}, 7, 0);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.value, 2);
  // int8_t -1 -> 64-bit -1.
  auto r8 = sb_->Call<int64_t(int8_t, int64_t, int64_t)>("add3", int8_t{-1},
                                                         0, 0);
  ASSERT_TRUE(r8.ok()) << r8.detail;
  EXPECT_EQ(r8.value, -1);
}

TEST_F(EmbedTest, UnsignedNarrowArgsAreZeroExtended) {
  Make();
  auto r = sb_->Call<uint64_t(uint8_t, uint64_t, uint64_t)>(
      "add3", uint8_t{0xff}, 0, 0);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.value, 0xffu);
  auto r16 = sb_->Call<uint64_t(uint16_t, uint64_t, uint64_t)>(
      "add3", uint16_t{0xbeef}, 0x10000, 0);
  ASSERT_TRUE(r16.ok()) << r16.detail;
  EXPECT_EQ(r16.value, 0x1beefu);
}

TEST_F(EmbedTest, NarrowReturnTypesTruncate) {
  Make();
  auto r = sb_->Call<uint8_t(uint64_t)>("identity", 0x1234ffull);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.value, 0xffu);
  auto s = sb_->Call<int32_t(uint64_t)>("identity", 0xffffffffull);
  ASSERT_TRUE(s.ok()) << s.detail;
  EXPECT_EQ(s.value, -1);
}

TEST_F(EmbedTest, VoidReturnDiscardsX0) {
  Make();
  auto r = sb_->Call<void(uint64_t)>("identity", 99);
  EXPECT_TRUE(r.ok()) << r.detail;
}

// ---- Floating point ----

TEST_F(EmbedTest, FloatArgsUseVectorRegisters) {
  Make();
  auto r = sb_->Call<float(float, float)>("fadd_s", 1.5f, 2.25f);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.value, 3.75f);
}

TEST_F(EmbedTest, DoubleArgsUseVectorRegisters) {
  Make();
  auto r = sb_->Call<double(double, double)>("fadd_d", 1.25, -0.5);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.value, 0.75);
}

TEST_F(EmbedTest, DoubleMarshalledBitExactly) {
  Make();
  const double d = 3.141592653589793;
  auto r = sb_->Call<uint64_t(double)>("fbits", d);
  ASSERT_TRUE(r.ok()) << r.detail;
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  EXPECT_EQ(r.value, bits);
}

TEST_F(EmbedTest, IntAndFloatArgsWalkSeparateCounters) {
  Make();
  // mix(x0, d0, d1) = x0 + rawbits(d1): the two doubles must land in
  // vr0/vr1 while the integer stays in x0 (independent NGRN/NSRN).
  const double d = 2.0;
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  auto r = sb_->Call<uint64_t(uint64_t, double, double)>("mix", 5, 1.0, d);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.value, 5 + bits);
}

// ---- Stack spills ----

TEST_F(EmbedTest, ArgsPastTheEighthSpillToGuestStack) {
  Make();
  auto r = sb_->Call<uint64_t(uint64_t, uint64_t, uint64_t, uint64_t,
                              uint64_t, uint64_t, uint64_t, uint64_t,
                              uint64_t, uint64_t)>("sum10", 1, 2, 3, 4, 5, 6,
                                                   7, 8, 900, 10000);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.value, 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 900 + 10000u);
}

TEST_F(EmbedTest, SpillBeyondMaxStackArgsFailsClosed) {
  Sandbox::Options opts;
  opts.max_stack_args = 1;  // sum10 needs two spill slots
  Make(opts);
  auto r = sb_->Call<uint64_t(uint64_t, uint64_t, uint64_t, uint64_t,
                              uint64_t, uint64_t, uint64_t, uint64_t,
                              uint64_t, uint64_t)>("sum10", 1, 2, 3, 4, 5, 6,
                                                   7, 8, 9, 10);
  EXPECT_EQ(r.err, Err::kTooManyArgs);
  // The guest never ran; the sandbox stays alive.
  EXPECT_TRUE(sb_->alive());
}

// ---- Buffers ----

TEST_F(EmbedTest, BufInCopiesHostBytesIntoGuestScratch) {
  Make();
  std::vector<uint8_t> buf = {1, 2, 3, 250, 4};
  auto r = sb_->Call<uint64_t(BufIn, uint64_t)>(
      "sum_buf", BufIn{buf.data(), buf.size()}, buf.size());
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.value, 1 + 2 + 3 + 250 + 4u);
}

TEST_F(EmbedTest, BufOutCopiesGuestWritesBackToHost) {
  Make();
  std::vector<uint8_t> buf(64, 0x11);
  auto r = sb_->Call<uint64_t(BufOut, uint64_t, uint64_t)>(
      "fill", BufOut{buf.data(), buf.size()}, buf.size(), 0x5a);
  ASSERT_TRUE(r.ok()) << r.detail;
  for (uint8_t b : buf) EXPECT_EQ(b, 0x5a);
}

TEST_F(EmbedTest, OversizedBufferFailsClosed) {
  Sandbox::Options opts;
  opts.max_buffer_bytes = 4096;
  Make(opts);
  std::vector<uint8_t> buf(8192);
  auto r = sb_->Call<uint64_t(BufIn, uint64_t)>(
      "sum_buf", BufIn{buf.data(), buf.size()}, buf.size());
  EXPECT_EQ(r.err, Err::kBufferTooLarge);
  EXPECT_TRUE(sb_->alive());
}

TEST_F(EmbedTest, BufferStraddlingTheSlotBoundaryFailsClosed) {
  // A buffer long enough that the scratch carve-out would leave the
  // program region entirely. The length check runs before any host bytes
  // are read, so a small real allocation with a huge declared length is
  // safe to pass.
  Sandbox::Options opts;
  opts.max_buffer_bytes = 1ull << 33;
  Make(opts);
  std::vector<uint8_t> tiny(16);
  auto r = sb_->Call<uint64_t(BufIn, uint64_t)>(
      "sum_buf", BufIn{tiny.data(), (1ull << 32) + 4096}, 16);
  EXPECT_EQ(r.err, Err::kBufferOutOfRange);
  EXPECT_TRUE(sb_->alive());
}

TEST_F(EmbedTest, MarshalledBufferPointerIsInSlot) {
  Make();
  std::vector<uint8_t> buf(32, 0);
  auto r = sb_->Call<GuestPtr(BufIn)>("bufaddr", BufIn{buf.data(), buf.size()});
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.value.addr >> 32, sb_->base() >> 32);
  EXPECT_GE(r.value.addr & 0xffffffffu, runtime::kProgramStart);
}

// ---- Guest pointers and shared memory ----

TEST_F(EmbedTest, SharedMemoryRoundTripsThroughGuestLoadsAndStores) {
  Make();
  auto shm = sb_->MapShared(runtime::kPage);
  ASSERT_TRUE(shm.ok()) << shm.error();
  const uint64_t magic = 0x1122334455667788ull;
  std::vector<uint8_t> bytes(8);
  std::memcpy(bytes.data(), &magic, 8);
  ASSERT_TRUE(shm->Write(0, {bytes.data(), bytes.size()}).ok());

  // Guest load through the host-written region.
  auto r = sb_->Call<uint64_t(GuestPtr)>("deref", shm->ptr());
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.value, magic);

  // Guest store, host read-back.
  auto w = sb_->Call<uint64_t(GuestPtr, uint64_t)>("store64", shm->ptr(),
                                                   0xdeadbeefull);
  ASSERT_TRUE(w.ok()) << w.detail;
  std::vector<uint8_t> back(8);
  ASSERT_TRUE(shm->Read(0, {back.data(), back.size()}).ok());
  uint64_t got;
  std::memcpy(&got, back.data(), 8);
  EXPECT_EQ(got, 0xdeadbeefull);
}

TEST_F(EmbedTest, HostRangeGuestPtrArgumentIsRejectedWithoutRunning) {
  Make();
  auto r = sb_->Call<uint64_t(GuestPtr)>("deref",
                                         GuestPtr{0xdead000000001000ull});
  EXPECT_EQ(r.err, Err::kBadGuestPointer);
  // The bad pointer came from the host; the guest never ran and is not
  // punished for it.
  EXPECT_TRUE(sb_->alive());
  auto ok = sb_->Call<uint64_t(uint64_t)>("identity", 3);
  EXPECT_TRUE(ok.ok()) << ok.detail;
}

TEST_F(EmbedTest, GuestReturnedHostRangePointerKillsTheGuest) {
  Make();
  auto r = sb_->Call<GuestPtr()>("wildptr");
  EXPECT_EQ(r.err, Err::kBadGuestPointer);
  // The guest tried to hand the host a wild pointer: fail closed.
  EXPECT_FALSE(sb_->alive());
  auto dead = sb_->Call<uint64_t(uint64_t)>("identity", 1);
  EXPECT_EQ(dead.err, Err::kSandboxDead);
  ASSERT_TRUE(sb_->Restart().ok());
  auto again = sb_->Call<uint64_t(uint64_t)>("identity", 1);
  EXPECT_TRUE(again.ok()) << again.detail;
}

// ---- Callbacks ----

TEST_F(EmbedTest, CallbackRoundTripMarshalsBothDirections) {
  Make();
  uint64_t seen = 0;
  sb_->BindCallback(0, std::function<uint64_t(uint64_t)>([&](uint64_t x) {
                      seen = x;
                      return x * 2;
                    }));
  auto r = sb_->Call<uint64_t(uint64_t)>("echo", 21);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(seen, 21u);
  EXPECT_EQ(r.value, 21 * 2 + 1u);  // guest adds 1 after the hostcall
}

TEST_F(EmbedTest, UnboundCallbackIndexFailsClosed) {
  Make();
  auto r = sb_->Call<uint64_t()>("badcb");
  EXPECT_EQ(r.err, Err::kBadCallbackIndex);
  EXPECT_FALSE(sb_->alive());
  ASSERT_TRUE(sb_->Restart().ok());
  EXPECT_TRUE(sb_->alive());
}

// ---- Remaining distinct failure modes ----

TEST_F(EmbedTest, UnknownExportNameFailsWithoutRunning) {
  Make();
  auto r = sb_->Call<uint64_t()>("no_such_export");
  EXPECT_EQ(r.err, Err::kNoSuchFunction);
  EXPECT_TRUE(sb_->alive());
}

TEST_F(EmbedTest, RunawayCallExhaustsFuel) {
  Sandbox::Options opts;
  opts.call_fuel = 20'000;
  Make(opts);
  auto r = sb_->Call<void()>("spin");
  EXPECT_EQ(r.err, Err::kFuelExhausted);
  EXPECT_FALSE(sb_->alive());
  ASSERT_TRUE(sb_->Restart().ok());
  auto again = sb_->Call<uint64_t(uint64_t)>("identity", 4);
  EXPECT_TRUE(again.ok()) << again.detail;
  EXPECT_EQ(again.value, 4u);
}

TEST_F(EmbedTest, EveryErrHasADistinctName) {
  std::vector<std::string> names;
  for (int e = 0; e <= static_cast<int>(Err::kProtocol); ++e) {
    names.push_back(ErrName(static_cast<Err>(e)));
  }
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]) << "duplicate Err name " << names[i];
    }
  }
}

TEST_F(EmbedTest, CreateFromSharesBaselineButNotState) {
  Make();
  auto other = Sandbox::CreateFrom(*sb_);
  ASSERT_TRUE(other.ok()) << other.error();
  EXPECT_NE((*other)->pid(), sb_->pid());
  // Both answer calls independently.
  auto a = sb_->Call<uint64_t(uint64_t)>("identity", 10);
  auto b = (*other)->Call<uint64_t(uint64_t)>("identity", 20);
  ASSERT_TRUE(a.ok()) << a.detail;
  ASSERT_TRUE(b.ok()) << b.detail;
  EXPECT_EQ(a.value, 10u);
  EXPECT_EQ(b.value, 20u);
  // Killing the clone leaves the original alive.
  auto w = (*other)->Call<GuestPtr()>("wildptr");
  EXPECT_EQ(w.err, Err::kBadGuestPointer);
  EXPECT_FALSE((*other)->alive());
  EXPECT_TRUE(sb_->alive());
}

TEST_F(EmbedTest, BadExportTableFailsCreateClosed) {
  // A module that announces a table with a corrupt magic word.
  const std::vector<GuestExport> none = {};
  std::string src = R"(
  adr x0, bogus
  rtcall #20
__lfi_ret_stub:
  mov x9, x19
  rtcall #19
  b __lfi_ret_stub
.rodata
.balign 16
bogus:
  .quad 0x1111111111111111
  .quad __lfi_ret_stub
  .quad 0
)";
  auto elf = test::BuildElf(src);
  ASSERT_TRUE(elf.ok()) << elf.error();
  runtime::Runtime rt(TestConfig());
  auto sb = Sandbox::Create(rt, {elf->data(), elf->size()});
  EXPECT_FALSE(sb.ok());
}

TEST_F(EmbedTest, OrdinaryProgramNeverReachesEmbedReady) {
  // A plain exit(0) program is not an embeddable module: Create must fail
  // (kExited path), not hang or succeed.
  const char* src = R"(
  mov x0, #0
  rtcall #0
)";
  auto elf = test::BuildElf(src);
  ASSERT_TRUE(elf.ok()) << elf.error();
  runtime::Runtime rt(TestConfig());
  auto sb = Sandbox::Create(rt, {elf->data(), elf->size()});
  EXPECT_FALSE(sb.ok());
}

}  // namespace
}  // namespace lfi::embed
