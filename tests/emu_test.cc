// Emulator tests: address space, instruction semantics, timing model.

#include <gtest/gtest.h>

#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "emu/machine.h"

namespace lfi::emu {
namespace {

using arch::Reg;

constexpr uint64_t kCode = 0x100000;  // where test code is mapped
constexpr uint64_t kData = 0x200000;  // general-purpose RW area

// Builds a machine with a code page at kCode (RX) and a data page at
// kData (RW), assembles `src` there, and returns after running it until
// a brk, fault, or the step limit.
struct TestVm {
  AddressSpace space;
  Machine machine;

  explicit TestVm(const std::string& src)
      : machine(&space, arch::AppleM1LikeParams()) {
    auto file = asmtext::Parse(src);
    EXPECT_TRUE(file.ok()) << (file.ok() ? "" : file.error());
    asmtext::LayoutSpec spec;
    spec.text_offset = kCode;
    auto img = asmtext::Assemble(*file, spec);
    EXPECT_TRUE(img.ok()) << (img.ok() ? "" : img.error());
    EXPECT_TRUE(space.Map(kCode, 0x40000, kPermRead | kPermExec).ok());
    EXPECT_TRUE(space.Map(kData, 0x40000, kPermRead | kPermWrite).ok());
    EXPECT_TRUE(space
                    .HostWrite(img->text_addr,
                               {img->text.data(), img->text.size()})
                    .ok());
    if (!img->data.empty()) {
      EXPECT_TRUE(
          space.HostWrite(img->data_addr, {img->data.data(), img->data.size()})
              .ok());
    }
    machine.state().pc = img->entry;
    machine.state().sp = kData + 0x20000;
  }

  StopReason Run(uint64_t steps = 100000) { return machine.Run(steps); }
  uint64_t X(int n) { return machine.state().x[n]; }
};

// Assembles `src` with the TestVm layout (text at kCode) without mapping
// anything; used to produce replacement code bytes for remap tests.
asmtext::Image AssembleAt(const std::string& src) {
  auto file = asmtext::Parse(src);
  EXPECT_TRUE(file.ok()) << (file.ok() ? "" : file.error());
  asmtext::LayoutSpec spec;
  spec.text_offset = kCode;
  auto img = asmtext::Assemble(*file, spec);
  EXPECT_TRUE(img.ok()) << (img.ok() ? "" : img.error());
  return *img;
}

TEST(AddressSpace, MapReadWrite) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x4000, 0x8000, kPermRead | kPermWrite).ok());
  ASSERT_TRUE(as.Write(0x4100, 0xdeadbeefcafe, 8).ok());
  auto v = as.Read(0x4100, 8);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0xdeadbeefcafeu);
  // Partial-width read.
  auto b = as.Read(0x4100, 2);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, 0xcafeu);
}

TEST(AddressSpace, FaultsOnUnmappedAndPerms) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x4000, 0x4000, kPermRead).ok());
  EXPECT_FALSE(as.Read(0x100000, 8).ok());
  EXPECT_EQ(as.last_fault().kind, MemFault::Kind::kUnmapped);
  EXPECT_FALSE(as.Write(0x4000, 1, 8).ok());
  EXPECT_EQ(as.last_fault().kind, MemFault::Kind::kPermission);
  EXPECT_EQ(as.last_fault().access, Access::kWrite);
  EXPECT_FALSE(as.Fetch(0x4000).ok());  // no exec permission
}

TEST(AddressSpace, AccessStraddlingUnmappedBoundaryFaults) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x4000, 0x4000, kPermRead | kPermWrite).ok());
  // Last 4 bytes of the mapping + 4 bytes beyond.
  EXPECT_FALSE(as.Read(0x7ffc, 8).ok());
  EXPECT_FALSE(as.Write(0x7ffc, 0, 8).ok());
  // And fully inside is fine.
  EXPECT_TRUE(as.Read(0x7ff8, 8).ok());
}

TEST(AddressSpace, CopyOnWriteSharing) {
  AddressSpace a;
  ASSERT_TRUE(a.Map(0x4000, 0x4000, kPermRead | kPermWrite).ok());
  ASSERT_TRUE(a.Write(0x4000, 42, 8).ok());
  AddressSpace b;
  a.CloneInto(&b);
  EXPECT_EQ(*b.Read(0x4000, 8), 42u);
  // Writing in the child must not affect the parent.
  ASSERT_TRUE(b.Write(0x4000, 99, 8).ok());
  EXPECT_EQ(*a.Read(0x4000, 8), 42u);
  EXPECT_EQ(*b.Read(0x4000, 8), 99u);
}

TEST(AddressSpace, ShareRangePlacesAliasedPages) {
  AddressSpace a;
  ASSERT_TRUE(a.Map(0x4000, 0x4000, kPermRead | kPermWrite).ok());
  ASSERT_TRUE(a.Write(0x4000, 7, 8).ok());
  ASSERT_TRUE(a.ShareRange(0x4000, 0x40000, 0x4000).ok());
  EXPECT_EQ(*a.Read(0x40000, 8), 7u);
  // COW: writing one copy leaves the other intact.
  ASSERT_TRUE(a.Write(0x40000, 8, 8).ok());
  EXPECT_EQ(*a.Read(0x4000, 8), 7u);
}

TEST(AddressSpace, CheckEmptyAndWrappingRanges) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x4000, kPageSize, kPermRead).ok());
  // Zero-length ranges are vacuously valid anywhere, even unmapped.
  EXPECT_TRUE(as.Check(0x4000, 0, kPermRead));
  EXPECT_TRUE(as.Check(0x900000, 0, kPermRead));
  // A range wrapping past 2^64 never validates (and must not loop).
  EXPECT_FALSE(as.Check(~uint64_t{0} - 8, 16, kPermRead));
  EXPECT_FALSE(as.Check(~uint64_t{0}, 1, kPermRead));
}

TEST(AddressSpace, MapUnmapProtectRejectWrappingRanges) {
  AddressSpace as;
  const uint64_t top = ~kPageMask;  // last page-aligned address
  EXPECT_FALSE(as.Map(top, 2 * kPageSize, kPermRead).ok());
  EXPECT_FALSE(as.Unmap(top, 2 * kPageSize).ok());
  EXPECT_FALSE(as.Protect(top, 2 * kPageSize, kPermRead).ok());
  ASSERT_TRUE(as.Map(0x4000, kPageSize, kPermRead | kPermWrite).ok());
  EXPECT_FALSE(as.ShareRange(0x4000, top, 2 * kPageSize).ok());
  EXPECT_FALSE(as.ShareRange(top, 0x40000, 2 * kPageSize).ok());
}

TEST(AddressSpace, MapRejectsOverlapUnlessFixed) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(kPageSize, 2 * kPageSize, kPermRead | kPermWrite).ok());
  ASSERT_TRUE(as.Write(kPageSize, 77, 8).ok());
  // A partially overlapping map is rejected and maps nothing at all.
  EXPECT_FALSE(as.Map(2 * kPageSize, 2 * kPageSize, kPermRead).ok());
  EXPECT_EQ(*as.Read(kPageSize, 8), 77u);
  EXPECT_FALSE(as.Check(3 * kPageSize, 8, kPermRead));
  // MAP_FIXED-style replacement succeeds and zero-fills.
  ASSERT_TRUE(
      as.Map(kPageSize, kPageSize, kPermRead | kPermWrite, MapMode::kFixed)
          .ok());
  EXPECT_EQ(*as.Read(kPageSize, 8), 0u);
}

TEST(AddressSpace, MutationGenerationTracksExecRelevantChanges) {
  AddressSpace as;
  uint64_t g = as.mutation_generation();
  ASSERT_TRUE(as.Map(0x4000, kPageSize, kPermRead | kPermWrite).ok());
  EXPECT_GT(as.mutation_generation(), g);
  g = as.mutation_generation();
  // Writes to non-executable pages must not bump the generation.
  ASSERT_TRUE(as.Write(0x4000, 1, 8).ok());
  uint8_t byte = 0;
  ASSERT_TRUE(as.HostWrite(0x4000, {&byte, 1}).ok());
  EXPECT_EQ(as.mutation_generation(), g);
  // Making the page executable bumps; so does every write to it after.
  ASSERT_TRUE(
      as.Protect(0x4000, kPageSize, kPermRead | kPermWrite | kPermExec).ok());
  EXPECT_GT(as.mutation_generation(), g);
  g = as.mutation_generation();
  ASSERT_TRUE(as.Write(0x4000, 2, 8).ok());
  EXPECT_GT(as.mutation_generation(), g);
  g = as.mutation_generation();
  ASSERT_TRUE(as.HostWrite(0x4000, {&byte, 1}).ok());
  EXPECT_GT(as.mutation_generation(), g);
}

TEST(Machine, ArithmeticLoop) {
  // Sum 1..10 into x0.
  TestVm vm(R"(
    mov x0, #0
    mov x1, #10
  loop:
    add x0, x0, x1
    subs x1, x1, #1
    b.ne loop
    brk #0
  )");
  EXPECT_EQ(vm.Run(), StopReason::kBrk);
  EXPECT_EQ(vm.X(0), 55u);
}

TEST(Machine, GuardForcesTopBits) {
  // The core LFI property: add x18, x21, wN, uxtw replaces the top 32 bits
  // of an arbitrary value with the sandbox base.
  TestVm vm(R"(
    movz x21, #0xdead, lsl #32
    movz x1, #0x4141, lsl #48
    movk x1, #0x1234
    add x18, x21, w1, uxtw
    brk #0
  )");
  EXPECT_EQ(vm.Run(), StopReason::kBrk);
  EXPECT_EQ(vm.X(18), 0xdead00001234u);
}

TEST(Machine, GuardedAddressingModeSemantics) {
  // ldr rt, [x21, wN, uxtw] ignores the index's top 32 bits.
  TestVm vm(R"(
    movz x21, #0x20, lsl #16   // x21 = kData
    movz x2, #0x77
    str x2, [x21, #64]
    movz x3, #0xffff, lsl #48  // garbage top bits
    movk x3, #64               // low 32 = 64
    ldr x0, [x21, w3, uxtw]
    brk #0
  )");
  EXPECT_EQ(vm.Run(), StopReason::kBrk);
  EXPECT_EQ(vm.X(0), 0x77u);
}

TEST(Machine, FlagsAndConditionalSelect) {
  TestVm vm(R"(
    mov x1, #5
    mov x2, #9
    cmp x1, x2
    csel x0, x1, x2, lt    // min -> 5
    cset w3, lt
    csinc x4, xzr, xzr, eq // not equal -> 0 + 1
    brk #0
  )");
  EXPECT_EQ(vm.Run(), StopReason::kBrk);
  EXPECT_EQ(vm.X(0), 5u);
  EXPECT_EQ(vm.X(3), 1u);
  EXPECT_EQ(vm.X(4), 1u);
}

TEST(Machine, BitfieldAliases) {
  TestVm vm(R"(
    movz x1, #0xff00
    lsl x2, x1, #8
    lsr x3, x1, #8
    movn x4, #0            // x4 = all ones
    asr x5, x4, #63
    sxtw x6, w4
    uxth w7, w1
    brk #0
  )");
  EXPECT_EQ(vm.Run(), StopReason::kBrk);
  EXPECT_EQ(vm.X(2), 0xff0000u);
  EXPECT_EQ(vm.X(3), 0xffu);
  EXPECT_EQ(vm.X(5), ~uint64_t{0});
  EXPECT_EQ(vm.X(6), ~uint64_t{0});
  EXPECT_EQ(vm.X(7), 0xff00u);
}

TEST(Machine, MulDivRemainderIdiom) {
  TestVm vm(R"(
    mov x1, #37
    mov x2, #5
    udiv x3, x1, x2
    msub x4, x3, x2, x1    // remainder = 37 - 7*5
    sdiv x5, xzr, xzr      // divide by zero -> 0
    brk #0
  )");
  EXPECT_EQ(vm.Run(), StopReason::kBrk);
  EXPECT_EQ(vm.X(3), 7u);
  EXPECT_EQ(vm.X(4), 2u);
  EXPECT_EQ(vm.X(5), 0u);
}

TEST(Machine, LoadStoreVariantsAndSignExtension) {
  TestVm vm(R"(
    movz x10, #0x20, lsl #16   // kData
    movn w1, #0                // 0xffffffff
    str w1, [x10]
    ldrsb x2, [x10]
    ldrh w3, [x10]
    ldrsw x4, [x10]
    strb w1, [x10, #100]
    ldrb w5, [x10, #100]
    brk #0
  )");
  EXPECT_EQ(vm.Run(), StopReason::kBrk);
  EXPECT_EQ(vm.X(2), ~uint64_t{0});
  EXPECT_EQ(vm.X(3), 0xffffu);
  EXPECT_EQ(vm.X(4), ~uint64_t{0});
  EXPECT_EQ(vm.X(5), 0xffu);
}

TEST(Machine, PairAndPrePostIndex) {
  TestVm vm(R"(
    movz x10, #0x21, lsl #16
    mov x1, #111
    mov x2, #222
    stp x1, x2, [x10, #-16]!
    ldp x3, x4, [x10], #16
    str x1, [x10, #8]!
    ldr x5, [x10], #-8
    brk #0
  )");
  EXPECT_EQ(vm.Run(), StopReason::kBrk);
  EXPECT_EQ(vm.X(3), 111u);
  EXPECT_EQ(vm.X(4), 222u);
  EXPECT_EQ(vm.X(5), 111u);
  EXPECT_EQ(vm.X(10), 0x210000u);
}

TEST(Machine, ExclusivePairSucceedsAndFails) {
  TestVm vm(R"(
    movz x10, #0x20, lsl #16
    mov x1, #5
    str x1, [x10]
    ldxr x2, [x10]
    add x2, x2, #1
    stxr w3, x2, [x10]      // should succeed: w3 = 0
    stxr w4, x2, [x10]      // monitor cleared: w4 = 1
    ldr x5, [x10]
    brk #0
  )");
  EXPECT_EQ(vm.Run(), StopReason::kBrk);
  EXPECT_EQ(vm.X(3), 0u);
  EXPECT_EQ(vm.X(4), 1u);
  EXPECT_EQ(vm.X(5), 6u);
}

TEST(Machine, FloatingPoint) {
  TestVm vm(R"(
    mov x1, #3
    mov x2, #4
    scvtf d0, x1
    scvtf d1, x2
    fmul d2, d0, d1
    fadd d2, d2, d1        // 16
    fsqrt d3, d2           // 4
    fcvtzs x0, d3
    fcmp d3, d1
    cset w4, eq
    brk #0
  )");
  EXPECT_EQ(vm.Run(), StopReason::kBrk);
  EXPECT_EQ(vm.X(0), 4u);
  EXPECT_EQ(vm.X(4), 1u);
}

TEST(Machine, VectorAdd) {
  TestVm vm(R"(
    movz x10, #0x20, lsl #16
    mov x1, #1
    mov x2, #2
    str x1, [x10]
    str x2, [x10, #8]
    str x2, [x10, #16]
    str x1, [x10, #24]
    ldr q0, [x10]
    ldr q1, [x10, #16]
    add v2.2d, v0.2d, v1.2d
    str q2, [x10, #32]
    ldr x3, [x10, #32]
    ldr x4, [x10, #40]
    brk #0
  )");
  EXPECT_EQ(vm.Run(), StopReason::kBrk);
  EXPECT_EQ(vm.X(3), 3u);
  EXPECT_EQ(vm.X(4), 3u);
}

TEST(Machine, JumpTableViaBr) {
  TestVm vm(R"(
    adr x1, case1
    br x1
    mov x0, #1
    brk #0
  case1:
    mov x0, #42
    brk #0
  )");
  EXPECT_EQ(vm.Run(), StopReason::kBrk);
  EXPECT_EQ(vm.X(0), 42u);
}

TEST(Machine, CallAndReturn) {
  TestVm vm(R"(
    bl func
    mov x1, #7
    brk #0
  func:
    mov x0, #9
    ret
  )");
  EXPECT_EQ(vm.Run(), StopReason::kBrk);
  EXPECT_EQ(vm.X(0), 9u);
  EXPECT_EQ(vm.X(1), 7u);
}

TEST(Machine, StoreToUnmappedFaults) {
  TestVm vm(R"(
    movz x1, #0x7f, lsl #32
    str x1, [x1]
    brk #0
  )");
  EXPECT_EQ(vm.Run(), StopReason::kFault);
  EXPECT_EQ(vm.machine.fault().kind, CpuFault::Kind::kMemory);
  EXPECT_EQ(vm.machine.fault().mem.kind, MemFault::Kind::kUnmapped);
}

TEST(Machine, StoreToReadOnlyCodeFaults) {
  TestVm vm(R"(
    movz x1, #0x10, lsl #16   // kCode
    str x1, [x1]
    brk #0
  )");
  EXPECT_EQ(vm.Run(), StopReason::kFault);
  EXPECT_EQ(vm.machine.fault().mem.kind, MemFault::Kind::kPermission);
}

TEST(Machine, ExecuteDataFaults) {
  TestVm vm(R"(
    movz x1, #0x20, lsl #16   // kData: mapped RW, not X
    br x1
  )");
  EXPECT_EQ(vm.Run(), StopReason::kFault);
  EXPECT_EQ(vm.machine.fault().kind, CpuFault::Kind::kFetch);
}

TEST(Machine, MisalignedBranchFaults) {
  TestVm vm(R"(
    movz x1, #0x10, lsl #16
    add x1, x1, #2
    br x1
  )");
  EXPECT_EQ(vm.Run(), StopReason::kFault);
  EXPECT_EQ(vm.machine.fault().kind, CpuFault::Kind::kPcAlign);
}

TEST(Machine, SvcIsIllegal) {
  TestVm vm("svc #0\n");
  EXPECT_EQ(vm.Run(), StopReason::kFault);
  EXPECT_EQ(vm.machine.fault().kind, CpuFault::Kind::kIllegal);
}

TEST(Machine, RuntimeRegionStopsExecution) {
  TestVm vm(R"(
    movz x1, #0x7000, lsl #16
    br x1
  )");
  vm.machine.SetRuntimeRegion(0x70000000, 0x10000);
  EXPECT_EQ(vm.Run(), StopReason::kRuntimeEntry);
  EXPECT_EQ(vm.machine.state().pc, 0x70000000u);
}

// Regression: after the code region is remapped with different bytes, the
// machine must execute the new code, not a stale decoded copy. (The
// original per-page decode cache kept serving the old instructions here.)
TEST(Machine, RemapInvalidatesDecodedCode) {
  TestVm vm("  mov x0, #1\n  brk #0\n");
  const uint64_t entry = vm.machine.state().pc;
  ASSERT_EQ(vm.Run(), StopReason::kBrk);
  EXPECT_EQ(vm.X(0), 1u);
  // Remap the code region (fresh zero pages) and install different code.
  ASSERT_TRUE(
      vm.space.Map(kCode, 0x40000, kPermRead | kPermExec, MapMode::kFixed)
          .ok());
  const asmtext::Image img = AssembleAt("  mov x0, #2\n  brk #0\n");
  ASSERT_TRUE(
      vm.space.HostWrite(img.text_addr, {img.text.data(), img.text.size()})
          .ok());
  vm.machine.state().pc = entry;
  ASSERT_EQ(vm.Run(), StopReason::kBrk);
  EXPECT_EQ(vm.X(0), 2u);  // a stale cache would still deliver #1
}

// Same property for in-place code patching through HostWrite (no remap).
TEST(Machine, HostWriteToExecPageInvalidatesDecodedCode) {
  TestVm vm("  mov x0, #1\n  brk #0\n");
  const uint64_t entry = vm.machine.state().pc;
  ASSERT_EQ(vm.Run(), StopReason::kBrk);
  EXPECT_EQ(vm.X(0), 1u);
  const asmtext::Image img = AssembleAt("  mov x0, #3\n  brk #0\n");
  ASSERT_TRUE(
      vm.space.HostWrite(img.text_addr, {img.text.data(), img.text.size()})
          .ok());
  vm.machine.state().pc = entry;
  ASSERT_EQ(vm.Run(), StopReason::kBrk);
  EXPECT_EQ(vm.X(0), 3u);
}

// Removing exec permission must also invalidate: re-running previously
// decoded code faults at fetch instead of executing from the cache.
TEST(Machine, ProtectDropsExecAndRerunFetchFaults) {
  TestVm vm("  mov x0, #1\n  brk #0\n");
  const uint64_t entry = vm.machine.state().pc;
  ASSERT_EQ(vm.Run(), StopReason::kBrk);
  ASSERT_TRUE(vm.space.Protect(kCode, 0x40000, kPermRead).ok());
  vm.machine.state().pc = entry;
  ASSERT_EQ(vm.Run(), StopReason::kFault);
  EXPECT_EQ(vm.machine.fault().kind, CpuFault::Kind::kFetch);
}

// --- Block-chaining invalidation (Dispatch::kChained, docs/DISPATCH.md) ---

// A guest store into the executing page bumps the mutation generation
// mid-flight: the chained backend must sever its block->block links at the
// very next edge, redecode, and execute the patched code — and do all of
// that on the same simulated schedule as the reference backends. The store
// lands on an instruction *after* the loop, so a stale chain would deliver
// the pre-patch "mov x0, #1".
TEST(Machine, ChainedSelfModifyingStoreSeversChainsMidLoop) {
  const char* src =
      "  movz x9, #5\n"
      "  movz x1, #0x0040\n"
      "  movk x1, #0xd280, lsl #16\n"  // 0xd2800040 = "mov x0, #2"
      "loop:\n"
      "  subs x9, x9, #1\n"
      "  str w1, [x3]\n"  // patches the exec page every iteration
      "  b.ne loop\n"
      "  mov x0, #1\n"  // patch site: becomes "mov x0, #2"
      "  brk #0\n";
  uint64_t want_retired = 0, want_cycles = 0;
  for (Dispatch d : {Dispatch::kChained, Dispatch::kBlock, Dispatch::kStep}) {
    SCOPED_TRACE("dispatch " + std::to_string(int(d)));
    TestVm vm(src);
    ASSERT_TRUE(vm.space
                    .Protect(kCode, 0x40000,
                             kPermRead | kPermWrite | kPermExec)
                    .ok());
    vm.machine.set_dispatch(d);
    vm.machine.state().x[3] = vm.machine.state().pc + 24;  // the patch site
    ASSERT_EQ(vm.Run(), StopReason::kBrk);
    EXPECT_EQ(vm.X(0), 2u);  // a live chain would still deliver #1
    if (d == Dispatch::kChained) {
      want_retired = vm.machine.timing().Retired();
      want_cycles = vm.machine.timing().Cycles();
      EXPECT_GT(want_retired, 0u);
    } else {
      EXPECT_EQ(vm.machine.timing().Retired(), want_retired);
      EXPECT_EQ(vm.machine.timing().Cycles(), want_cycles);
    }
  }
}

// Host-side mutations between runs — HostWrite code patching, a Protect
// permission cycle, and a full remap — must each leave the chained backend
// executing fresh code on the reference backend's exact simulated
// schedule. Every phase reuses the same machine, so chains built in one
// phase are live bait for the next.
TEST(Machine, ChainedHostMutationsMatchReferenceAcrossRuns) {
  const char* kLoop1 =
      "  movz x9, #100\n"
      "l1:\n"
      "  subs x9, x9, #1\n"
      "  b.ne l1\n"
      "  mov x0, #1\n"
      "  brk #0\n";
  const char* kLoop2 =
      "  movz x9, #60\n"
      "l2:\n"
      "  subs x9, x9, #1\n"
      "  b.ne l2\n"
      "  mov x0, #2\n"
      "  brk #0\n";
  const char* kLoop3 =
      "  movz x9, #30\n"
      "l3:\n"
      "  subs x9, x9, #1\n"
      "  b.ne l3\n"
      "  mov x0, #3\n"
      "  brk #0\n";
  auto run_seq = [&](Dispatch d) {
    std::vector<uint64_t> log;
    TestVm vm(kLoop1);
    vm.machine.set_dispatch(d);
    const uint64_t entry = vm.machine.state().pc;
    auto record = [&](StopReason stop) {
      EXPECT_EQ(stop, StopReason::kBrk);
      log.push_back(vm.X(0));
      log.push_back(vm.machine.timing().Retired());
      log.push_back(vm.machine.timing().Cycles());
    };
    record(vm.Run());  // phase 1: builds chains for the loop

    // Phase 2: HostWrite patches the loop in place.
    const asmtext::Image img2 = AssembleAt(kLoop2);
    EXPECT_TRUE(
        vm.space.HostWrite(img2.text_addr, {img2.text.data(), img2.text.size()})
            .ok());
    vm.machine.state().pc = entry;
    record(vm.Run());

    // Phase 3: a Protect round-trip (perms unchanged in the end) still
    // bumps the generation; the rerun must redecode, not trust chains.
    EXPECT_TRUE(vm.space.Protect(kCode, 0x40000, kPermRead).ok());
    EXPECT_TRUE(
        vm.space.Protect(kCode, 0x40000, kPermRead | kPermExec).ok());
    vm.machine.state().pc = entry;
    record(vm.Run());

    // Phase 4: full remap with different code.
    EXPECT_TRUE(
        vm.space.Map(kCode, 0x40000, kPermRead | kPermExec, MapMode::kFixed)
            .ok());
    const asmtext::Image img3 = AssembleAt(kLoop3);
    EXPECT_TRUE(
        vm.space.HostWrite(img3.text_addr, {img3.text.data(), img3.text.size()})
            .ok());
    vm.machine.state().pc = entry;
    record(vm.Run());
    return log;
  };
  const std::vector<uint64_t> chained = run_seq(Dispatch::kChained);
  const std::vector<uint64_t> block = run_seq(Dispatch::kBlock);
  const std::vector<uint64_t> step = run_seq(Dispatch::kStep);
  ASSERT_EQ(chained.size(), 12u);
  EXPECT_EQ(chained[0], 1u);
  EXPECT_EQ(chained[3], 2u);
  EXPECT_EQ(chained[6], 2u);  // phase 3 reruns the phase-2 code
  EXPECT_EQ(chained[9], 3u);
  EXPECT_EQ(block, chained);
  EXPECT_EQ(step, chained);
}

// --- Timing model properties ---

// Runs `body` inside a counted loop and returns total cycles.
uint64_t CyclesFor(const std::string& body, int iters = 1000) {
  TestVm vm("  movz x10, #0x20, lsl #16\n  mov x9, #" +
            std::to_string(iters) +
            "\nloop:\n" + body +
            "  subs x9, x9, #1\n  b.ne loop\n  brk #0\n");
  EXPECT_EQ(vm.Run(10000000), StopReason::kBrk);
  return vm.machine.timing().Cycles();
}

TEST(Timing, GuardLatencyOrdering) {
  // A dependent chain through the 2-cycle extended-add guard must cost
  // more than the same chain through plain adds (Section 4's motivation).
  const uint64_t plain = CyclesFor(R"(
    add x1, x1, x2
    add x1, x1, x2
    add x1, x1, x2
  )");
  const uint64_t guarded = CyclesFor(R"(
    add x1, x1, w2, uxtw
    add x1, x1, w2, uxtw
    add x1, x1, w2, uxtw
  )");
  EXPECT_GT(guarded, plain + plain / 2);
}

TEST(Timing, EmbeddedGuardIsFree) {
  // ldr via [base, wN, uxtw] costs the same as ldr via [xN] - the
  // zero-instruction guard of Section 4.1. Both loops perform the same
  // dependent-load chain; the second simply uses the guarded addressing
  // mode with a zero index register (x11 stays 0).
  const uint64_t plain = CyclesFor("  ldr x1, [x10]\n  ldr x1, [x10]\n");
  const uint64_t embedded =
      CyclesFor("  ldr x1, [x10, w11, uxtw]\n  ldr x1, [x10, w11, uxtw]\n");
  EXPECT_EQ(embedded, plain);
}

TEST(Timing, MispredictionCostsCycles) {
  // A data-dependent unpredictable branch pattern should cost more than a
  // perfectly predictable one.
  const uint64_t predictable = CyclesFor(R"(
    add x1, x1, #1
    tbz x9, #20, skip1
    add x2, x2, #1
  skip1:
  )");
  const uint64_t alternating = CyclesFor(R"(
    add x1, x1, #1
    tbz x9, #0, skip2
    add x2, x2, #1
  skip2:
  )");
  // Alternating taken/not-taken defeats a 2-bit counter about half the
  // time; require a clear gap.
  EXPECT_GT(alternating, predictable + 1000);
}

// A loop striding by 64 bytes over a large region (cold) vs hammering one
// line (hot). The data area is only 256KiB so wrap with a register mask.
uint64_t StrideCycles(bool nested) {
  TestVm vm(R"(
    movz x10, #0x20, lsl #16
    movz x9, #20000
    mov x11, #0
    movz x12, #0xffc0         // mask: 256KiB, 64-byte aligned
    movk x12, #0x3, lsl #16
  loop:
    add x11, x11, #4032       // a prime-ish stride of cache lines
    and x11, x11, x12
    add x13, x10, x11
    ldr x1, [x13]
    subs x9, x9, #1
    b.ne loop
    brk #0
  )");
  vm.machine.timing().set_nested_pagetables(nested);
  EXPECT_EQ(vm.Run(10000000), StopReason::kBrk);
  return vm.machine.timing().Cycles();
}

TEST(Timing, CacheMissesCost) {
  const uint64_t hot = CyclesFor("  ldr x1, [x10]\n", 20000);
  const uint64_t cold = StrideCycles(false);
  // The cold loop has more instructions so compare very loosely: striding
  // beyond L1 must be at least 2x a hot line.
  EXPECT_GT(cold, hot * 2);
}

TEST(Timing, NestedPagetablesIncreaseWalkCost) {
  // Same strided loop with nested page tables must not be cheaper, and a
  // TLB-thrashing pattern should actually get slower.
  EXPECT_GE(StrideCycles(true), StrideCycles(false));
}

}  // namespace
}  // namespace lfi::emu
