// Tests for the extended instruction subset: ccmp/ccmn, extr/ror,
// umulh/smulh - encode/decode round trips, parsing (including aliases),
// execution semantics, and verifier acceptance.

#include <gtest/gtest.h>

#include "arch/decode.h"
#include "arch/encode.h"
#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "asmtext/printer.h"
#include "emu/machine.h"
#include "verifier/verifier.h"

namespace lfi {
namespace {

using arch::Cond;
using arch::Inst;
using arch::Mn;
using arch::Reg;
using arch::Width;

void RoundTrip(const Inst& in) {
  auto word = arch::Encode(in);
  ASSERT_TRUE(word.ok()) << word.error();
  auto back = arch::Decode(*word);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(*back, in) << std::hex << *word;
}

TEST(ExtendedIsa, CcmpRoundTripSweep) {
  for (Mn mn : {Mn::kCcmp, Mn::kCcmn}) {
    for (Cond c : {Cond::kEq, Cond::kLt, Cond::kHi}) {
      for (uint8_t nzcv : {0, 4, 15}) {
        Inst i;
        i.mn = mn;
        i.width = Width::kX;
        i.rn = Reg::X(3);
        i.rm = Reg::X(4);
        i.cond = c;
        i.nzcv = nzcv;
        RoundTrip(i);
      }
    }
  }
  for (Mn mn : {Mn::kCcmpImm, Mn::kCcmnImm}) {
    for (int64_t imm : {0L, 17L, 31L}) {
      Inst i;
      i.mn = mn;
      i.width = Width::kW;
      i.rn = Reg::X(7);
      i.imm = imm;
      i.cond = Cond::kNe;
      i.nzcv = 2;
      RoundTrip(i);
    }
  }
}

TEST(ExtendedIsa, ExtrAndMulhRoundTrip) {
  for (uint8_t lsb : {0, 1, 31, 63}) {
    Inst i;
    i.mn = Mn::kExtr;
    i.width = Width::kX;
    i.rd = Reg::X(0);
    i.rn = Reg::X(1);
    i.rm = Reg::X(2);
    i.imms = lsb;
    RoundTrip(i);
  }
  for (Mn mn : {Mn::kUmulh, Mn::kSmulh}) {
    Inst i;
    i.mn = mn;
    i.width = Width::kX;
    i.rd = Reg::X(5);
    i.rn = Reg::X(6);
    i.rm = Reg::X(7);
    RoundTrip(i);
  }
}

TEST(ExtendedIsa, ParserAndPrinterRoundTrip) {
  for (const char* line :
       {"ccmp x1, x2, #4, eq", "ccmp w1, #17, #0, lt",
        "ccmn x3, x4, #15, hi", "extr x0, x1, x2, #13",
        "umulh x0, x1, x2", "smulh x3, x4, x5"}) {
    auto s1 = asmtext::ParseInst(line);
    ASSERT_TRUE(s1.ok()) << line << ": " << s1.error();
    auto s2 = asmtext::ParseInst(asmtext::PrintStmt(*s1));
    ASSERT_TRUE(s2.ok()) << asmtext::PrintStmt(*s1);
    EXPECT_EQ(s1->inst, s2->inst) << line;
  }
  // ror alias maps onto extr with rn == rm.
  auto ror = asmtext::ParseInst("ror x0, x1, #7");
  ASSERT_TRUE(ror.ok());
  EXPECT_EQ(ror->inst.mn, Mn::kExtr);
  EXPECT_EQ(ror->inst.rn, ror->inst.rm);
  EXPECT_EQ(ror->inst.imms, 7);
}

// Executes a snippet ending in brk and returns x0.
uint64_t Exec(const std::string& src) {
  emu::AddressSpace space;
  emu::Machine machine(&space, arch::AppleM1LikeParams());
  auto file = asmtext::Parse(src);
  EXPECT_TRUE(file.ok()) << file.error();
  asmtext::LayoutSpec spec;
  spec.text_offset = 0x100000;
  auto img = asmtext::Assemble(*file, spec);
  EXPECT_TRUE(img.ok()) << img.error();
  EXPECT_TRUE(
      space.Map(0x100000, 0x40000, emu::kPermRead | emu::kPermExec).ok());
  EXPECT_TRUE(
      space.HostWrite(img->text_addr, {img->text.data(), img->text.size()})
          .ok());
  machine.state().pc = img->entry;
  EXPECT_EQ(machine.Run(10000), emu::StopReason::kBrk)
      << machine.fault().detail;
  return machine.state().x[0];
}

TEST(ExtendedIsa, CcmpSemantics) {
  // Range check idiom: 3 <= x < 10 via cmp + ccmp.
  EXPECT_EQ(Exec(R"(
    mov x1, #5
    cmp x1, #3
    ccmp x1, #10, #2, hs    // if x1 >= 3, compare with 10; else C=1
    cset w0, lo             // 1 if in range
    brk #0
  )"), 1u);
  EXPECT_EQ(Exec(R"(
    mov x1, #2
    cmp x1, #3
    ccmp x1, #10, #2, hs    // condition fails: C=1 -> lo false
    cset w0, lo
    brk #0
  )"), 0u);
  // ccmn compares against the negation.
  EXPECT_EQ(Exec(R"(
    movn x1, #4             // x1 = -5
    cmp xzr, xzr
    ccmn x1, #5, #0, eq     // -5 + 5 == 0 -> Z set
    cset w0, eq
    brk #0
  )"), 1u);
}

TEST(ExtendedIsa, ExtrAndRorSemantics) {
  EXPECT_EQ(Exec(R"(
    mov x1, #1
    ror x0, x1, #1          // rotate 1 right by 1 = MSB
    brk #0
  )"), uint64_t{1} << 63);
  EXPECT_EQ(Exec(R"(
    movz x1, #0xAAAA        // hi source
    movz x2, #0x5555        // lo source
    extr x0, x1, x2, #8
    brk #0
  )"), (uint64_t{0xAAAA} << 56) | (0x5555 >> 8));
}

TEST(ExtendedIsa, MulHighSemantics) {
  // umulh(2^32, 2^32) = 1.
  EXPECT_EQ(Exec(R"(
    movz x1, #1, lsl #32
    umulh x0, x1, x1
    brk #0
  )"), 1u);
  // smulh(-1, 1) = -1 (high half of -1).
  EXPECT_EQ(Exec(R"(
    movn x1, #0
    mov x2, #1
    smulh x0, x1, x2
    brk #0
  )"), ~uint64_t{0});
}

TEST(ExtendedIsa, VerifierAcceptsAndEnforcesInvariants) {
  auto check = [](const std::string& src) {
    auto f = asmtext::Parse(src);
    EXPECT_TRUE(f.ok());
    asmtext::LayoutSpec spec;
    auto img = asmtext::Assemble(*f, spec);
    EXPECT_TRUE(img.ok());
    return verifier::Verify({img->text.data(), img->text.size()}).ok;
  };
  EXPECT_TRUE(check("ccmp x1, x2, #4, eq\nret\n"));
  EXPECT_TRUE(check("umulh x0, x1, x2\nret\n"));
  // Writes to reserved registers through the new instructions are caught.
  EXPECT_FALSE(check("extr x18, x1, x2, #3\nret\n"));
  EXPECT_FALSE(check("umulh x21, x1, x2\nret\n"));
  EXPECT_FALSE(check("smulh x22, x1, x2\nret\n"));   // 64-bit write to x22
  EXPECT_FALSE(check("ror x24, x1, #3\nret\n"));
}

TEST(LogicalImm, ExhaustiveEncodingRoundTrip) {
  // Sweep every (n, immr, imms) triple; every one that decodes must
  // re-encode to the identical triple (canonical encodings), and the
  // decoded masks must be unique per triple.
  int valid = 0;
  for (int n = 0; n <= 1; ++n) {
    for (int immr = 0; immr < 64; ++immr) {
      for (int imms = 0; imms < 64; ++imms) {
        auto mask = arch::DecodeBitmaskImm(
            static_cast<uint8_t>(n), static_cast<uint8_t>(immr),
            static_cast<uint8_t>(imms), Width::kX);
        if (!mask.ok()) continue;
        ++valid;
        auto enc = arch::EncodeBitmaskImm(*mask, Width::kX);
        ASSERT_TRUE(enc.ok()) << std::hex << *mask << ": " << enc.error();
        EXPECT_EQ(enc->n, n) << std::hex << *mask;
        EXPECT_EQ(enc->immr, immr) << std::hex << *mask;
        EXPECT_EQ(enc->imms, imms) << std::hex << *mask;
      }
    }
  }
  // The architecture defines 5334 valid 64-bit logical immediates... minus
  // the non-canonical immr forms we reject. At minimum the canonical set:
  EXPECT_GE(valid, 4000);
}

TEST(LogicalImm, CommonMasksEncode) {
  for (uint64_t v : {uint64_t{0xff}, uint64_t{0xffff}, uint64_t{0xffffffff},
                     uint64_t{0x7}, uint64_t{0xfffffffffffffffe},
                     uint64_t{0x5555555555555555},
                     uint64_t{0xff00ff00ff00ff00}, uint64_t{1} << 63}) {
    EXPECT_TRUE(arch::EncodeBitmaskImm(v, Width::kX).ok()) << std::hex << v;
  }
  // Not encodable: 0, all-ones, and non-run patterns.
  EXPECT_FALSE(arch::EncodeBitmaskImm(0, Width::kX).ok());
  EXPECT_FALSE(arch::EncodeBitmaskImm(~uint64_t{0}, Width::kX).ok());
  EXPECT_FALSE(arch::EncodeBitmaskImm(0x5, Width::kX).ok());
  EXPECT_FALSE(arch::EncodeBitmaskImm(0xff1, Width::kX).ok());
}

TEST(LogicalImm, ParseExecuteAndVerify) {
  EXPECT_EQ(Exec(R"(
    movn x1, #0
    and x0, x1, #0xff
    brk #0
  )"), 0xffu);
  EXPECT_EQ(Exec(R"(
    mov x1, #0
    orr x0, x1, #0xff00
    brk #0
  )"), 0xff00u);
  EXPECT_EQ(Exec(R"(
    movn x1, #0
    eor x0, x1, #0xffffffff
    brk #0
  )"), 0xffffffff00000000u);
  EXPECT_EQ(Exec(R"(
    mov w1, #7
    ands w0, w1, #2
    cset w0, ne
    brk #0
  )"), 1u);
  // 32-bit form masks to 32 bits.
  EXPECT_EQ(Exec(R"(
    movn x1, #0
    and w0, w1, #0xf0
    brk #0
  )"), 0xf0u);
}

TEST(LogicalImm, VerifierInvariantsStillHold) {
  auto check = [](const std::string& src) {
    auto f = asmtext::Parse(src);
    EXPECT_TRUE(f.ok()) << f.error();
    asmtext::LayoutSpec spec;
    auto img = asmtext::Assemble(*f, spec);
    EXPECT_TRUE(img.ok()) << img.error();
    return verifier::Verify({img->text.data(), img->text.size()}).ok;
  };
  EXPECT_TRUE(check("and x0, x1, #0xff\nret\n"));
  EXPECT_TRUE(check("and w22, w1, #0xff\nret\n"));   // w-write to x22: fine
  EXPECT_FALSE(check("and x22, x1, #0xff\nret\n"));  // 64-bit write: no
  EXPECT_FALSE(check("orr x18, x1, #0xff\nret\n"));
  EXPECT_FALSE(check("and x21, x21, #0xff\nret\n"));
  // and can target sp in the ISA; for LFI that is an unguarded sp write.
  EXPECT_FALSE(check("and sp, x1, #0xfffffffffffffff0\nret\n"));
}

}  // namespace
}  // namespace lfi
