// Smoke coverage for lfi-fuzz --mode=embed: a short run must execute
// every operation class without tripping either oracle (slot invariants,
// Err taxonomy), and the run must be deterministic in its seed.

#include <gtest/gtest.h>

#include "embed/embed_fuzz.h"
#include "fuzz/fuzz.h"

namespace lfi::embed {
namespace {

TEST(FuzzEmbedSmoke, ShortRunIsCleanAndCountsAdd) {
  fuzz::FuzzOptions opts;
  opts.seed = 0x5eed;
  opts.iters = 60;
  auto report = RunEmbedFuzz(opts);
  EXPECT_EQ(report.mode, "embed");
  EXPECT_EQ(report.iters, 60u);
  EXPECT_EQ(report.executed, 60u);
  for (const auto& c : report.crashes) {
    ADD_FAILURE() << "iter " << c.iter << ": " << c.detail;
  }
  EXPECT_TRUE(report.ok());
}

TEST(FuzzEmbedSmoke, RunsAreDeterministicInTheSeed) {
  fuzz::FuzzOptions opts;
  opts.seed = 1234;
  opts.iters = 40;
  auto a = RunEmbedFuzz(opts);
  auto b = RunEmbedFuzz(opts);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.crashes.size(), b.crashes.size());
  EXPECT_TRUE(a.ok());
}

}  // namespace
}  // namespace lfi::embed
