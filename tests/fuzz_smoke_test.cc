// Bounded smoke runs of the three fuzzing modes, plus meta-tests that
// prove the soundness oracle itself works: hand-built escape programs
// (bypassing the verifier) must be convicted by the SlotInvariantChecker,
// and the seed-corpus escape probes must stay verifier-rejected. The
// probes double as regression tests: if the verifier ever starts
// accepting one, both layers of this file fail.

#include <gtest/gtest.h>

#include <algorithm>

#include "arch/encode.h"
#include "fuzz/exec.h"
#include "fuzz/fuzz.h"
#include "fuzz/gen.h"
#include "fuzz_util.h"
#include "runtime/layout.h"
#include "verifier/verifier.h"

namespace lfi {
namespace {

using arch::Inst;
using arch::Mn;
using arch::Reg;
using arch::Width;

uint32_t Enc(const Inst& i) {
  auto r = arch::Encode(i);
  EXPECT_TRUE(r.ok()) << r.error();
  return r.ok() ? *r : fuzz::kNopWord;
}

Inst Movz(uint8_t rd, uint16_t imm, uint8_t hw) {
  Inst i;
  i.mn = Mn::kMovz;
  i.width = Width::kX;
  i.rd = Reg::X(rd);
  i.imm = imm;
  i.shift_amount = static_cast<uint8_t>(hw * 16);
  return i;
}

Inst Str(uint8_t rt, uint8_t base, int64_t imm = 0) {
  Inst i;
  i.mn = Mn::kStr;
  i.width = Width::kX;
  i.msize = 8;
  i.rt = Reg::X(rt);
  i.mem.base = Reg::X(base);
  i.mem.mode = arch::AddrMode::kImm;
  i.mem.imm = imm;
  return i;
}

std::span<const uint8_t> AsBytes(const std::vector<uint32_t>& words) {
  return {reinterpret_cast<const uint8_t*>(words.data()), words.size() * 4};
}

size_t DistinctRejectKinds(const fuzz::FuzzReport& r) {
  size_t n = 0;
  for (uint64_t c : r.reject_kinds) n += c != 0;
  return n;
}

// --- Bounded smoke runs (the ctest face of lfi-fuzz). ---

TEST(FuzzSmoke, SoundnessRunsClean) {
  fuzz::FuzzOptions opts;
  opts.seed = 0x5eed;
  opts.iters = 500;
  const auto r = fuzz::RunSoundness(opts);
  for (const auto& c : r.crashes) {
    ADD_FAILURE() << "escape found:\n" << fuzz::FormatArtifact(c);
  }
  EXPECT_GT(r.accepted, 0u);
  EXPECT_GT(r.rejected, 0u);
  EXPECT_EQ(r.executed, r.accepted);
  // The mutation engine must be reaching several verifier rules, not just
  // tripping over undecodable words.
  EXPECT_GE(DistinctRejectKinds(r), 4u);
}

TEST(FuzzSmoke, DifferentialBlockStepAgree) {
  fuzz::FuzzOptions opts;
  opts.seed = 0xd1ff;
  opts.iters = 200;
  const auto r = fuzz::RunDifferential(opts);
  for (const auto& c : r.crashes) {
    ADD_FAILURE() << "divergence found:\n" << fuzz::FormatArtifact(c);
  }
  EXPECT_GT(r.executed, 0u);
}

TEST(FuzzSmoke, ChainedDifferentialAgreesWithReference) {
  fuzz::FuzzOptions opts;
  opts.seed = 0xc4a1;
  opts.iters = 200;
  const auto r = fuzz::RunChainedDifferential(opts);
  for (const auto& c : r.crashes) {
    ADD_FAILURE() << "chained divergence found:\n" << fuzz::FormatArtifact(c);
  }
  EXPECT_GT(r.executed, 0u);
}

TEST(FuzzSmoke, CompletenessRewriterOutputAlwaysVerifies) {
  fuzz::FuzzOptions opts;
  opts.seed = 0xc0de;
  opts.iters = 80;
  const auto r = fuzz::RunCompleteness(opts);
  for (const auto& c : r.crashes) {
    ADD_FAILURE() << "pipeline failure:\n" << fuzz::FormatArtifact(c);
  }
  EXPECT_EQ(r.accepted, r.iters);
}

// --- Oracle meta-tests: feed UNVERIFIED escapes straight to the harness;
// the checker must convict every one. If these pass, a fuzzing run with
// zero findings means the verifier is tight, not that the oracle is blind.

TEST(SoundnessOracle, ConvictsOutOfWindowStore) {
  // x25 := base - 64KiB, inside the low tripwire page (mapped RW so the
  // store *retires*; only the checker can object).
  const std::vector<uint32_t> words = {Enc(Movz(25, 0xFFFF, 1)),
                                       Enc(Str(0, 25))};
  for (auto dispatch : {emu::Dispatch::kBlock, emu::Dispatch::kStep}) {
    fuzz::ExecOptions eo;
    eo.dispatch = dispatch;
    const auto res = fuzz::ExecuteWords(words, eo);
    EXPECT_NE(res.violation.find("escapes the slot+guard window"),
              std::string::npos)
        << "dispatch=" << int(dispatch) << ": " << res.violation;
  }
}

TEST(SoundnessOracle, ConvictsUnmappedOutOfWindowAccess) {
  // Address far outside the window and not mapped at all: the access
  // faults, but the *attempt* must still be convicted (real hardware may
  // have a neighbor there).
  const std::vector<uint32_t> words = {Enc(Movz(9, 0x00F0, 2)),
                                       Enc(Str(0, 9))};
  const auto res = fuzz::ExecuteWords(words, {});
  EXPECT_NE(res.violation.find("escapes"), std::string::npos)
      << res.violation;
}

TEST(SoundnessOracle, ConvictsUnguardedIndirectBranch) {
  Inst br;
  br.mn = Mn::kBr;
  br.rn = Reg::X(9);
  const std::vector<uint32_t> words = {Enc(Movz(9, 0x0002, 1)),  // 0x20000
                                       Enc(br)};
  const auto res = fuzz::ExecuteWords(words, {});
  EXPECT_NE(res.violation.find("indirect branch escaped"), std::string::npos)
      << res.violation;
}

TEST(SoundnessOracle, ConvictsBaseRegisterClobber) {
  Inst add;
  add.mn = Mn::kAddImm;
  add.width = Width::kX;
  add.rd = arch::kRegBase;
  add.rn = arch::kRegBase;
  add.imm = 8;
  const std::vector<uint32_t> words = {Enc(add)};
  const auto res = fuzz::ExecuteWords(words, {});
  EXPECT_NE(res.violation.find("x21"), std::string::npos) << res.violation;
}

TEST(SoundnessOracle, ConvictsWideScratchValue) {
  const std::vector<uint32_t> words = {Enc(Movz(22, 1, 3))};
  const auto res = fuzz::ExecuteWords(words, {});
  EXPECT_NE(res.violation.find("x22"), std::string::npos) << res.violation;
}

TEST(SoundnessOracle, ConvictsAddressRegisterEscape) {
  // x23 := 1, far below the slot.
  const std::vector<uint32_t> words = {Enc(Movz(23, 0x0001, 0))};
  const auto res = fuzz::ExecuteWords(words, {});
  EXPECT_NE(res.violation.find("x23"), std::string::npos) << res.violation;
}

TEST(SoundnessOracle, AcceptsLegalGuardedProgram) {
  // w0 := 0x200000 (the harness's data region), so the guarded store
  // lands on mapped RW memory and the program runs to its brk.
  Inst guard;
  guard.mn = Mn::kAddExt;
  guard.width = Width::kX;
  guard.rd = Reg::X(18);
  guard.rn = arch::kRegBase;
  guard.rm = Reg::X(0);
  guard.ext = arch::Extend::kUxtw;
  Inst brk;
  brk.mn = Mn::kBrk;
  const std::vector<uint32_t> words = {Enc(Movz(0, 0x0020, 1)), Enc(guard),
                                       Enc(Str(1, 18, 16)), Enc(brk)};
  const auto res = fuzz::ExecuteWords(words, {});
  EXPECT_TRUE(res.violation.empty()) << res.violation;
  EXPECT_EQ(res.stop, emu::StopReason::kBrk);
  EXPECT_GE(res.retired, 3u);
}

// --- Seed corpus: legal entries execute clean, escape probes stay
// rejected (regression tests for the verifier rules they target).

TEST(SeedCorpus, AcceptedEntriesExecuteWithoutViolations) {
  size_t accepted = 0, rejected = 0;
  for (const auto& words : fuzz::SeedCorpusWords()) {
    const auto v = verifier::Verify(AsBytes(words), {});
    if (!v.ok) {
      ++rejected;
      continue;
    }
    ++accepted;
    const auto res = fuzz::ExecuteWords(words, {});
    EXPECT_TRUE(res.violation.empty())
        << "corpus entry escaped: " << res.violation;
  }
  // The corpus must keep exercising both sides of the verifier.
  EXPECT_GE(accepted, 6u);
  EXPECT_GE(rejected, 5u);
}

TEST(SeedCorpus, EscapeProbesStayRejected) {
  struct Probe {
    std::vector<uint32_t> words;
    verifier::FailKind kind;
  };
  Inst br;
  br.mn = Mn::kBr;
  br.rn = Reg::X(9);
  Inst wbase;
  wbase.mn = Mn::kAddImm;
  wbase.width = Width::kX;
  wbase.rd = arch::kRegBase;
  wbase.rn = arch::kRegBase;
  wbase.imm = 1;
  Inst wscr;
  wscr.mn = Mn::kAddImm;
  wscr.width = Width::kX;
  wscr.rd = arch::kRegScratch;
  wscr.rn = Reg::X(0);
  const Probe probes[] = {
      {{Enc(Movz(25, 0xFFFF, 1)), Enc(Str(0, 25))},
       verifier::FailKind::kBadAddressingMode},
      {{Enc(br)}, verifier::FailKind::kUnguardedIndirectBranch},
      {{Enc(wbase)}, verifier::FailKind::kBaseRegWrite},
      {{Enc(wscr)}, verifier::FailKind::kScratchRegWrite},
      {{0xd4000001u}, verifier::FailKind::kSystemInstruction},
      {{0xffffffffu}, verifier::FailKind::kUndecodable},
  };
  for (const auto& p : probes) {
    const auto v = verifier::Verify(AsBytes(p.words), {});
    ASSERT_FALSE(v.ok);
    EXPECT_EQ(v.kind, p.kind) << v.reason;
  }
}

// --- Minimizer. ---

TEST(Minimizer, ShrinksToTheOffendingWords) {
  std::vector<uint32_t> words(6, fuzz::kNopWord);
  words.push_back(Enc(Movz(25, 0xFFFF, 1)));
  words.push_back(Enc(Str(0, 25)));
  words.insert(words.end(), 4, fuzz::kNopWord);
  auto fails = [](const std::vector<uint32_t>& w) {
    return !fuzz::ExecuteWords(w, {}).violation.empty();
  };
  ASSERT_TRUE(fails(words));
  const auto min = fuzz::MinimizeWords(words, fails);
  // Prefix bisection cuts the trailing nops; the nop-out pass cannot
  // remove either live instruction.
  EXPECT_EQ(min.size(), 8u);
  EXPECT_EQ(std::count_if(min.begin(), min.end(),
                          [](uint32_t w) { return w != fuzz::kNopWord; }),
            2);
  ASSERT_TRUE(fails(min));
}

// --- Artifact formatting: the words line must replay. ---

TEST(Artifact, FormatContainsReplayableWords) {
  fuzz::CrashArtifact a;
  a.mode = "soundness";
  a.iter = 7;
  a.seed = 0x1234;
  a.detail = "test";
  a.words = {Enc(Movz(25, 0xFFFF, 1)), fuzz::kNopWord};
  a.full_words = a.words;
  const std::string text = fuzz::FormatArtifact(a);
  EXPECT_NE(text.find("mode: soundness"), std::string::npos);
  EXPECT_NE(text.find("words:"), std::string::npos);
  EXPECT_NE(text.find("d503201f"), std::string::npos);  // the nop, in hex
  EXPECT_NE(text.find("disasm:"), std::string::npos);
  EXPECT_NE(text.find("movz"), std::string::npos);
}

}  // namespace
}  // namespace lfi
