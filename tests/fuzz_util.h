// Shared randomness for randomized tests.
//
// The Rng here is the canonical fuzzing generator from src/fuzz/rng.h
// (formerly an ad-hoc copy in differential_test.cc). Tests must use this
// one so that any seed recorded in a CI log or crash artifact reproduces
// the same stream in every suite.
#ifndef LFI_TESTS_FUZZ_UTIL_H_
#define LFI_TESTS_FUZZ_UTIL_H_

#include "fuzz/rng.h"

namespace lfi::test {

using Rng = fuzz::Rng;

}  // namespace lfi::test

#endif  // LFI_TESTS_FUZZ_UTIL_H_
