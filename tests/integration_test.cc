// Cross-layer integration properties exercised on the full workload
// corpus: printer/parser round-trips of rewritten programs, encoder/
// decoder agreement on whole binaries, and end-to-end text-format
// stability (rewrite -> print -> parse -> assemble == rewrite ->
// assemble).

#include <gtest/gtest.h>

#include "arch/decode.h"
#include "arch/encode.h"
#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "asmtext/printer.h"
#include "pipeline_util.h"
#include "rewriter/rewriter.h"
#include "workloads/workloads.h"

namespace lfi {
namespace {

class CorpusTest : public ::testing::TestWithParam<workloads::WorkloadInfo> {
 protected:
  asmtext::AsmFile Rewritten() {
    auto file = asmtext::Parse(workloads::Generate(GetParam().name, 50000));
    EXPECT_TRUE(file.ok());
    auto rewritten = rewriter::Rewrite(*file, rewriter::RewriteOptions{});
    EXPECT_TRUE(rewritten.ok()) << rewritten.error();
    return rewritten.ok() ? *rewritten : asmtext::AsmFile{};
  }
};

TEST_P(CorpusTest, PrintParseRoundTripPreservesAssembledBytes) {
  // Printing the rewritten program and re-parsing it must assemble to
  // byte-identical text segments: the text format loses nothing. This is
  // the property that lets the rewriter live outside the compiler
  // (Section 5.1): assembly text is a complete interchange format.
  const asmtext::AsmFile prog = Rewritten();
  asmtext::LayoutSpec spec;
  auto direct = asmtext::Assemble(prog, spec);
  ASSERT_TRUE(direct.ok()) << direct.error();
  auto reparsed = asmtext::Parse(asmtext::Print(prog));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  auto via_text = asmtext::Assemble(*reparsed, spec);
  ASSERT_TRUE(via_text.ok()) << via_text.error();
  EXPECT_EQ(direct->text, via_text->text);
  EXPECT_EQ(direct->data, via_text->data);
  EXPECT_EQ(direct->rodata, via_text->rodata);
  EXPECT_EQ(direct->entry, via_text->entry);
}

TEST_P(CorpusTest, AssembledTextDecodesAndReencodesIdentically) {
  // Every word of every rewritten binary must round-trip through the
  // decoder and encoder: the verifier (which sees decoded instructions)
  // and the hardware (which sees words) agree about the whole corpus.
  const asmtext::AsmFile prog = Rewritten();
  asmtext::LayoutSpec spec;
  auto img = asmtext::Assemble(prog, spec);
  ASSERT_TRUE(img.ok());
  ASSERT_EQ(img->text.size() % 4, 0u);
  for (size_t off = 0; off < img->text.size(); off += 4) {
    const uint32_t word =
        arch::ReadWordLE({img->text.data(), img->text.size()}, off);
    auto inst = arch::Decode(word);
    ASSERT_TRUE(inst.ok()) << "offset " << off << ": " << inst.error();
    auto re = arch::Encode(*inst);
    ASSERT_TRUE(re.ok()) << arch::MnName(*inst) << ": " << re.error();
    EXPECT_EQ(*re, word) << "offset " << off << " " << arch::MnName(*inst);
  }
}

TEST_P(CorpusTest, RewriteIsDeterministic) {
  const std::string src = workloads::Generate(GetParam().name, 50000);
  auto f1 = asmtext::Parse(src);
  auto f2 = asmtext::Parse(src);
  ASSERT_TRUE(f1.ok() && f2.ok());
  auto r1 = rewriter::Rewrite(*f1, rewriter::RewriteOptions{});
  auto r2 = rewriter::Rewrite(*f2, rewriter::RewriteOptions{});
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(asmtext::Print(*r1), asmtext::Print(*r2));
}

INSTANTIATE_TEST_SUITE_P(
    All, CorpusTest, ::testing::ValuesIn(workloads::AllWorkloads()),
    [](const ::testing::TestParamInfo<workloads::WorkloadInfo>& info) {
      std::string n = info.param.name;
      for (char& c : n) {
        if (c == '.') c = '_';
      }
      return n;
    });

TEST(Integration, ElfRoundTripOfRewrittenWorkload) {
  auto elf_bytes = test::BuildElf(workloads::Generate("505.mcf", 50000));
  ASSERT_TRUE(elf_bytes.ok());
  auto img = elf::Read({elf_bytes->data(), elf_bytes->size()});
  ASSERT_TRUE(img.ok()) << img.error();
  // Re-serialize and re-read: identical segment contents.
  auto bytes2 = elf::Write(*img);
  auto img2 = elf::Read({bytes2.data(), bytes2.size()});
  ASSERT_TRUE(img2.ok());
  ASSERT_EQ(img->segments.size(), img2->segments.size());
  for (size_t k = 0; k < img->segments.size(); ++k) {
    EXPECT_EQ(img->segments[k].data, img2->segments[k].data);
  }
}

}  // namespace
}  // namespace lfi
