// Shared test helper: drives the full LFI pipeline
// (assembly text -> rewrite -> assemble -> ELF bytes), the same path the
// lfi-clang wrapper takes in the paper's artifact.
#ifndef LFI_TESTS_PIPELINE_UTIL_H_
#define LFI_TESTS_PIPELINE_UTIL_H_

#include <string>
#include <vector>

#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "elf/elf.h"
#include "rewriter/rewriter.h"
#include "runtime/layout.h"
#include "support/result.h"

namespace lfi::test {

// Builds a sandbox ELF from assembly source. The rewriter runs unless
// `rewrite` is false (for hand-guarded or deliberately hostile inputs).
inline Result<std::vector<uint8_t>> BuildElf(
    const std::string& src, bool rewrite = true,
    rewriter::RewriteOptions opts = {}) {
  auto file = asmtext::Parse(src);
  if (!file) return Error{file.error()};
  asmtext::AsmFile prog = *std::move(file);
  if (rewrite) {
    auto rewritten = rewriter::Rewrite(prog, opts);
    if (!rewritten) return Error{rewritten.error()};
    prog = *std::move(rewritten);
  }
  asmtext::LayoutSpec spec;
  spec.text_offset = runtime::kProgramStart;
  auto img = asmtext::Assemble(prog, spec);
  if (!img) return Error{img.error()};
  return elf::Write(elf::FromAssembled(*img));
}

}  // namespace lfi::test

#endif  // LFI_TESTS_PIPELINE_UTIL_H_
