// Rewriter tests: Table 3 transformations, SP/x30 optimizations, RGE,
// rtcall expansion, tbz range fix, and the rewritten-code-verifies
// property.

#include <gtest/gtest.h>

#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "asmtext/printer.h"
#include "rewriter/rewriter.h"
#include "verifier/verifier.h"

namespace lfi::rewriter {
namespace {

using arch::AddrMode;
using arch::Mn;
using arch::Reg;
using asmtext::AsmFile;
using asmtext::AsmStmt;

AsmFile MustParse(const std::string& src) {
  auto f = asmtext::Parse(src);
  EXPECT_TRUE(f.ok()) << (f.ok() ? "" : f.error());
  return f.ok() ? *f : AsmFile{};
}

// Rewrites `src` and returns only the instruction statements.
std::vector<AsmStmt> RewriteInsts(const std::string& src,
                                  OptLevel level = OptLevel::kO2,
                                  bool loads = true) {
  RewriteOptions opts;
  opts.level = level;
  opts.sandbox_loads = loads;
  auto out = Rewrite(MustParse(src), opts);
  EXPECT_TRUE(out.ok()) << (out.ok() ? "" : out.error());
  std::vector<AsmStmt> insts;
  if (out.ok()) {
    for (auto& s : out->stmts) {
      if (s.kind == AsmStmt::Kind::kInst) insts.push_back(s);
    }
  }
  return insts;
}

// Renders the rewritten instructions as one-per-line text for matching.
std::string RewriteText(const std::string& src,
                        OptLevel level = OptLevel::kO2, bool loads = true) {
  std::string out;
  for (const auto& s : RewriteInsts(src, level, loads)) {
    std::string line = asmtext::PrintStmt(s);
    // Strip leading tab.
    if (!line.empty() && line[0] == '\t') line = line.substr(1);
    out += line + "\n";
  }
  return out;
}

// --- Table 3 transformations at O1 ---

struct Table3Case {
  const char* input;
  const char* expected;  // exact rewritten text
};

class Table3Test : public ::testing::TestWithParam<Table3Case> {};

TEST_P(Table3Test, MatchesPaper) {
  EXPECT_EQ(RewriteText(GetParam().input, OptLevel::kO1),
            GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    LoadForms, Table3Test,
    ::testing::Values(
        // ldr rt, [xN] -> ldr rt, [x21, wN, uxtw]
        Table3Case{"ldr x0, [x1]", "ldr x0, [x21, w1, uxtw]\n"},
        // ldr rt, [xN, #i] -> add w22, wN, #i ; ldr rt, [x21, w22, uxtw]
        Table3Case{"ldr x0, [x1, #16]",
                   "add w22, w1, #16\nldr x0, [x21, w22, uxtw]\n"},
        // pre-index: add xN, xN, #i ; ldr rt, [x21, wN, uxtw]
        Table3Case{"ldr x0, [x1, #16]!",
                   "add x1, x1, #16\nldr x0, [x21, w1, uxtw]\n"},
        // post-index: ldr rt, [x21, wN, uxtw] ; add xN, xN, #i
        Table3Case{"ldr x0, [x1], #16",
                   "ldr x0, [x21, w1, uxtw]\nadd x1, x1, #16\n"},
        // register lsl: add w22, wN, wM, lsl #i ; guarded load
        Table3Case{"ldr x0, [x1, x2, lsl #3]",
                   "add w22, w1, w2, lsl #3\nldr x0, [x21, w22, uxtw]\n"},
        // uxtw: add w22, wN, wM, uxtw #i ; guarded load
        Table3Case{"ldr x0, [x1, w2, uxtw #3]",
                   "add w22, w1, w2, uxtw #3\nldr x0, [x21, w22, uxtw]\n"},
        // sxtw: add w22, wN, wM, sxtw #i ; guarded load
        Table3Case{"ldr x0, [x1, w2, sxtw #3]",
                   "add w22, w1, w2, sxtw #3\nldr x0, [x21, w22, uxtw]\n"},
        // Stores use the same transformations.
        Table3Case{"str x0, [x1]", "str x0, [x21, w1, uxtw]\n"},
        Table3Case{"str x0, [x1, #16]",
                   "add w22, w1, #16\nstr x0, [x21, w22, uxtw]\n"},
        // Negative ldur-style offsets use sub.
        Table3Case{"ldr x0, [x1, #-8]",
                   "sub w22, w1, #8\nldr x0, [x21, w22, uxtw]\n"}));

TEST(Rewriter, O0UsesBasicGuard) {
  EXPECT_EQ(RewriteText("ldr x0, [x1]", OptLevel::kO0),
            "add x18, x21, w1, uxtw\nldr x0, [x18]\n");
  // Immediate offsets stay on the access (they stay within the guard
  // region).
  EXPECT_EQ(RewriteText("ldr x0, [x1, #16]", OptLevel::kO0),
            "add x18, x21, w1, uxtw\nldr x0, [x18, #16]\n");
  // Register-offset modes collapse into w22 first.
  EXPECT_EQ(RewriteText("ldr x0, [x1, x2, lsl #3]", OptLevel::kO0),
            "add w22, w1, w2, lsl #3\nadd x18, x21, w22, uxtw\n"
            "ldr x0, [x18]\n");
}

TEST(Rewriter, PairAndAtomicsUseBasicGuardAtO1) {
  // ldp/stp and exclusives have no guarded addressing mode (Section 4.1).
  EXPECT_EQ(RewriteText("ldp x2, x3, [x1, #16]", OptLevel::kO1),
            "add x18, x21, w1, uxtw\nldp x2, x3, [x18, #16]\n");
  EXPECT_EQ(RewriteText("ldxr x2, [x1]", OptLevel::kO1),
            "add x18, x21, w1, uxtw\nldxr x2, [x18]\n");
  EXPECT_EQ(RewriteText("stlr x2, [x1]", OptLevel::kO1),
            "add x18, x21, w1, uxtw\nstlr x2, [x18]\n");
}

TEST(Rewriter, SpAccessesNeedNoGuard) {
  EXPECT_EQ(RewriteText("ldr x0, [sp, #16]"), "ldr x0, [sp, #16]\n");
  EXPECT_EQ(RewriteText("str x0, [sp, #-16]!"), "str x0, [sp, #-16]!\n");
  EXPECT_EQ(RewriteText("ldp x29, x30, [sp, #32]"),
            // x30 reload gets its guard appended.
            "ldp x29, x30, [sp, #32]\nadd x30, x21, w30, uxtw\n");
}

TEST(Rewriter, SpSmallAdjustWithFollowingAccessIsElided) {
  RewriteStats stats;
  RewriteOptions opts;
  auto out = Rewrite(MustParse("sub sp, sp, #32\nstr x0, [sp, #8]\n"), opts,
                     &stats);
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_EQ(stats.guards_elided_sp, 1u);
  // No sp guard in the output.
  for (const auto& s : out->stmts) {
    if (s.kind == AsmStmt::Kind::kInst) {
      EXPECT_FALSE(arch::IsSpGuard(s.inst));
    }
  }
}

TEST(Rewriter, SpAdjustWithoutAccessGetsGuard) {
  EXPECT_EQ(RewriteText("sub sp, sp, #32\nret"),
            "sub sp, sp, #32\nadd w22, wsp, #0\nadd sp, x21, x22\nret\n");
  // Large adjustments always get the guard, access or not.
  EXPECT_EQ(RewriteText("sub sp, sp, #4096\nstr x0, [sp]\nret"),
            "sub sp, sp, #4096\nadd w22, wsp, #0\nadd sp, x21, x22\n"
            "str x0, [sp]\nret\n");
}

TEST(Rewriter, MovSpFromRegisterUsesScratchSequence) {
  // mov sp, x29 (epilogue) -> mov w22, w29 ; add sp, x21, x22.
  EXPECT_EQ(RewriteText("mov sp, x29"),
            "orr w22, wzr, w29\nadd sp, x21, x22\n");
}

TEST(Rewriter, IndirectBranchesAreGuarded) {
  EXPECT_EQ(RewriteText("br x5"), "add x18, x21, w5, uxtw\nbr x18\n");
  EXPECT_EQ(RewriteText("blr x5"), "add x18, x21, w5, uxtw\nblr x18\n");
  EXPECT_EQ(RewriteText("ret"), "ret\n");  // x30 invariant
}

TEST(Rewriter, X30LoadsGetGuards) {
  EXPECT_EQ(RewriteText("ldr x30, [sp], #16\nret"),
            "ldr x30, [sp], #16\nadd x30, x21, w30, uxtw\nret\n");
  EXPECT_EQ(RewriteText("mov x30, x3"), "add x30, x21, w3, uxtw\n");
}

TEST(Rewriter, RedundantGuardElimination) {
  // Figure 2: four stores off one base share one hoisted guard.
  const std::string out = RewriteText(
      "str x0, [x1, #8]\nstr x0, [x1, #16]\nstr x0, [x1, #24]\n"
      "str x0, [x1, #32]\n");
  EXPECT_EQ(out,
            "add x23, x21, w1, uxtw\n"
            "str x0, [x23, #8]\n"
            "str x0, [x23, #16]\n"
            "str x0, [x23, #24]\n"
            "str x0, [x23, #32]\n");
}

TEST(Rewriter, RgeUsesTwoHoistRegistersForTwoBases) {
  const std::string out = RewriteText(
      "str x0, [x1, #8]\nstr x0, [x2, #8]\nstr x0, [x1, #16]\n"
      "str x0, [x2, #16]\n");
  EXPECT_NE(out.find("add x23, x21, w1, uxtw"), std::string::npos);
  EXPECT_NE(out.find("add x24, x21, w2, uxtw"), std::string::npos);
  EXPECT_NE(out.find("[x23, #16]"), std::string::npos);
  EXPECT_NE(out.find("[x24, #16]"), std::string::npos);
}

TEST(Rewriter, RgeStopsAtBaseRedefinition) {
  const std::string out = RewriteText(
      "str x0, [x1, #8]\nstr x0, [x1, #16]\n"
      "add x1, x1, #64\n"
      "str x0, [x1, #8]\nstr x0, [x1, #16]\n");
  // After x1 changes, the stale hoisted base must not be reused: expect
  // two separate guards.
  size_t first = out.find("add x23, x21, w1, uxtw");
  ASSERT_NE(first, std::string::npos);
  size_t second = out.find("add x23, x21, w1, uxtw", first + 1);
  EXPECT_NE(second, std::string::npos);
}

TEST(Rewriter, RgeStopsAtBranchesAndLabels) {
  const std::string out = RewriteText(
      "str x0, [x1, #8]\nb skip\nskip:\nstr x0, [x1, #16]\n");
  // The two stores are in different blocks; neither should be hoisted
  // (a single access is not worth a hoist), so both use w22 adds.
  EXPECT_EQ(out.find("x23"), std::string::npos);
}

TEST(Rewriter, RgeDisabledAtO1) {
  const std::string out = RewriteText(
      "str x0, [x1, #8]\nstr x0, [x1, #16]\n", OptLevel::kO1);
  EXPECT_EQ(out.find("x23"), std::string::npos);
  EXPECT_NE(out.find("add w22, w1, #8"), std::string::npos);
}

TEST(Rewriter, NoLoadsModeLeavesLoadsAlone) {
  const std::string out =
      RewriteText("ldr x0, [x1, #8]\nstr x0, [x2, #8]\n", OptLevel::kO2,
                  /*loads=*/false);
  EXPECT_NE(out.find("ldr x0, [x1, #8]"), std::string::npos);
  // The store is still guarded.
  EXPECT_EQ(out.find("str x0, [x2, #8]"), std::string::npos);
}

TEST(Rewriter, NoLoadsModeStillGuardsX30Loads) {
  const std::string out = RewriteText("ldr x30, [sp], #16\nret",
                                      OptLevel::kO2, /*loads=*/false);
  EXPECT_NE(out.find("add x30, x21, w30, uxtw"), std::string::npos);
}

TEST(Rewriter, RtcallExpansion) {
  EXPECT_EQ(RewriteText("rtcall #3"),
            "str x30, [sp, #-16]!\n"
            "ldr x30, [x21, #24]\n"
            "blr x30\n"
            "ldr x30, [sp], #16\n"
            "add x30, x21, w30, uxtw\n");
  RewriteOptions opts;
  opts.save_restore_x30 = false;
  auto out = Rewrite(MustParse("rtcall #3"), opts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->stmts.size(), 2u);
}

TEST(Rewriter, RtcallOutOfRangeRejected) {
  RewriteOptions opts;
  opts.rtcall_entries = 16;
  EXPECT_FALSE(Rewrite(MustParse("rtcall #16"), opts).ok());
  EXPECT_FALSE(Rewrite(MustParse("rtcall #-1"), opts).ok());
}

TEST(Rewriter, RejectsReservedRegisterUse) {
  for (const char* line :
       {"add x21, x21, #1", "mov x18, x0", "ldr x0, [x22]",
        "add x0, x1, x23", "str x24, [x1]"}) {
    EXPECT_FALSE(Rewrite(MustParse(line), RewriteOptions{}).ok()) << line;
  }
}

TEST(Rewriter, RejectsSystemInstructions) {
  EXPECT_FALSE(Rewrite(MustParse("svc #0"), RewriteOptions{}).ok());
}

TEST(Rewriter, TbzRangeFix) {
  // Build a function where a tbz spans > 32KiB after rewriting.
  std::string src = "tbz x0, #3, far\n";
  for (int k = 0; k < 9000; ++k) {
    src += "str x0, [x1, #" + std::to_string((k % 4) * 8) + "]\n";
  }
  src += "far:\nret\n";
  RewriteStats stats;
  RewriteOptions opts;
  opts.level = OptLevel::kO1;  // every store expands to 2 insts
  auto out = Rewrite(MustParse(src), opts, &stats);
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_GE(stats.tbz_rewritten, 1u);
  // The result must assemble (i.e. all branch offsets in range).
  asmtext::LayoutSpec spec;
  auto img = asmtext::Assemble(*out, spec);
  EXPECT_TRUE(img.ok()) << (img.ok() ? "" : img.error());
}

// --- The central property: rewritten code verifies. ---

// A deterministic pseudo-random program generator exercising every
// rewritable pattern.
std::string RandomProgram(uint64_t seed, int len) {
  uint64_t state = seed;
  auto rnd = [&](int n) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int>((state >> 33) % n);
  };
  // Registers the generator may use (avoiding reserved ones).
  const char* regs[] = {"x0", "x1", "x2", "x3", "x4", "x5", "x6",
                        "x7", "x8", "x9", "x10", "x11", "x19", "x20"};
  auto reg = [&]() { return regs[rnd(14)]; };
  auto wreg = [&]() {
    std::string r = regs[rnd(14)];
    r[0] = 'w';
    return r;
  };
  std::string src;
  int label = 0;
  for (int k = 0; k < len; ++k) {
    switch (rnd(14)) {
      case 0: src += std::string("add ") + reg() + ", " + reg() + ", #" +
                     std::to_string(rnd(4096)) + "\n"; break;
      case 1: src += std::string("ldr ") + reg() + ", [" + reg() + ", #" +
                     std::to_string(rnd(512) * 8) + "]\n"; break;
      case 2: src += std::string("str ") + reg() + ", [" + reg() + "]\n";
              break;
      case 3: src += std::string("ldr ") + reg() + ", [" + reg() + ", " +
                     reg() + ", lsl #3]\n"; break;
      case 4: src += std::string("str ") + wreg() + ", [" + reg() + ", " +
                     wreg() + ", sxtw #2]\n"; break;
      case 5: src += std::string("ldp ") + "x2, x3, [" + reg() + ", #" +
                     std::to_string(rnd(32) * 8) + "]\n"; break;
      case 6: src += "sub sp, sp, #" + std::to_string(rnd(64) * 16) + "\n" +
                     "str x0, [sp, #8]\n"; break;
      case 7: src += "stp x29, x30, [sp, #-32]!\n"; break;
      case 8: src += "ldp x29, x30, [sp], #32\n"; break;
      case 9: src += std::string("ldr ") + reg() + ", [" + reg() + "], #8\n";
              break;
      case 10: src += std::string("str ") + reg() + ", [" + reg() +
                      ", #-16]!\n"; break;
      case 11: {
        std::string l = "l" + std::to_string(label++);
        src += std::string("cbz ") + reg() + ", " + l + "\n" +
               "add x0, x0, #1\n" + l + ":\n";
        break;
      }
      case 12: src += std::string("br ") + reg() + "\n"; break;
      case 13: src += "rtcall #" + std::to_string(rnd(8)) + "\n"; break;
    }
  }
  src += "ret\n";
  return src;
}

struct PropCase {
  uint64_t seed;
  OptLevel level;
  bool loads;
};

class RewriteVerifyProperty : public ::testing::TestWithParam<PropCase> {};

TEST_P(RewriteVerifyProperty, RewrittenProgramsPassVerification) {
  const PropCase& p = GetParam();
  const std::string src = RandomProgram(p.seed, 120);
  RewriteOptions opts;
  opts.level = p.level;
  opts.sandbox_loads = p.loads;
  auto out = Rewrite(MustParse(src), opts);
  ASSERT_TRUE(out.ok()) << out.error();
  asmtext::LayoutSpec spec;
  auto img = asmtext::Assemble(*out, spec);
  ASSERT_TRUE(img.ok()) << img.error();
  verifier::VerifyOptions vopts;
  vopts.check_loads = p.loads;
  auto res = verifier::Verify({img->text.data(), img->text.size()}, vopts);
  EXPECT_TRUE(res.ok) << "offset " << res.fail_offset << ": " << res.reason;
}

std::vector<PropCase> AllPropCases() {
  std::vector<PropCase> cases;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    for (OptLevel level : {OptLevel::kO0, OptLevel::kO1, OptLevel::kO2}) {
      cases.push_back({seed, level, true});
    }
    cases.push_back({seed, OptLevel::kO2, false});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteVerifyProperty,
                         ::testing::ValuesIn(AllPropCases()));

}  // namespace
}  // namespace lfi::rewriter
