// Runtime tests: loading, runtime calls, scheduling, fork/wait/pipe,
// isolation between sandboxes, and the fast yield.

#include <gtest/gtest.h>

#include "pipeline_util.h"
#include "runtime/runtime.h"

namespace lfi::runtime {
namespace {

RuntimeConfig TestConfig() {
  RuntimeConfig cfg;
  cfg.core = arch::AppleM1LikeParams();
  return cfg;
}

// Loads `src` through the full pipeline and runs it to completion.
struct TestRun {
  Runtime rt;
  int pid = -1;

  explicit TestRun(const std::string& src, bool rewrite = true,
                   RuntimeConfig cfg = TestConfig())
      : rt(cfg) {
    auto elf_bytes = test::BuildElf(src, rewrite);
    EXPECT_TRUE(elf_bytes.ok()) << (elf_bytes.ok() ? "" : elf_bytes.error());
    if (!elf_bytes.ok()) return;
    auto p = rt.Load({elf_bytes->data(), elf_bytes->size()});
    EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error());
    if (p.ok()) pid = *p;
  }

  Proc* P() { return rt.proc(pid); }
};

// A tiny "libc": exit with the value in x0.
constexpr const char* kExit = R"(
  rtcall #0        // exit(x0)
)";

TEST(Runtime, LoadRunExit) {
  TestRun t(std::string("mov x0, #42\n") + kExit);
  ASSERT_GE(t.pid, 0);
  EXPECT_EQ(t.rt.RunUntilIdle(), 0);
  EXPECT_EQ(t.P()->exit_kind, ExitKind::kExited);
  EXPECT_EQ(t.P()->exit_status, 42);
}

TEST(Runtime, WriteToStdout) {
  TestRun t(R"(
    adrp x1, msg
    add x1, x1, :lo12:msg
    mov x0, #1         // fd
    mov x2, #14        // len
    rtcall #1          // write
    mov x0, #0
    rtcall #0
  .data
  msg:
    .asciz "hello, sandbox"
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->out, "hello, sandbox");
  EXPECT_EQ(t.P()->exit_status, 0);
}

TEST(Runtime, OpenReadFile) {
  TestRun t(R"(
    adrp x0, path
    add x0, x0, :lo12:path
    mov x1, #0         // O_RDONLY
    rtcall #3          // open -> fd in x0
    mov x9, x0
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #64
    mov x0, x9
    rtcall #2          // read
    mov x9, x0         // bytes read
    mov x0, #1
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, x9
    rtcall #1          // write to stdout
    mov x0, #0
    rtcall #0
  .data
  path:
    .asciz "/etc/motd"
  .bss
  buf:
    .zero 64
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.vfs().Install("/etc/motd", std::string("welcome"));
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->out, "welcome");
}

TEST(Runtime, PathPolicyDeniesHostTree) {
  TestRun t(R"(
    adrp x0, path
    add x0, x0, :lo12:path
    mov x1, #0
    rtcall #3
    rtcall #0          // exit(open result)
  .data
  path:
    .asciz "/host/secret"
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.vfs().Install("/host/secret", std::string("no"));
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_status, -13);  // EACCES
}

TEST(Runtime, WriteToCreatedFile) {
  TestRun t(R"(
    adrp x0, path
    add x0, x0, :lo12:path
    mov x1, #0101      // O_WRONLY|O_CREAT (here: write|create)
    movz x1, #0x41
    rtcall #3
    mov x9, x0
    mov x0, x9
    adrp x1, msg
    add x1, x1, :lo12:msg
    mov x2, #3
    rtcall #1
    mov x0, x9
    rtcall #4          // close
    mov x0, #0
    rtcall #0
  .data
  path:
    .asciz "/tmp/out"
  msg:
    .asciz "abc"
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.RunUntilIdle();
  const VfsNode* node = t.rt.vfs().Lookup("/tmp/out");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(std::string(node->data.begin(), node->data.end()), "abc");
}

TEST(Runtime, MmapAndUse) {
  TestRun t(R"(
    mov x0, #0
    movz x1, #0x8000    // 32KiB
    rtcall #6           // mmap
    mov x9, x0
    mov x1, #123
    str x1, [x9, #64]
    ldr x2, [x9, #64]
    mov x0, x2
    rtcall #0
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_status, 123);
}

TEST(Runtime, BrkGrowsHeap) {
  TestRun t(R"(
    mov x0, #0
    rtcall #5           // brk(0) -> current
    movz x1, #0x2, lsl #16
    add x0, x0, x1      // +128KiB
    mov x9, x0
    rtcall #5           // brk(new)
    sub x2, x9, #8
    mov x3, #77
    str x3, [x2]
    ldr x0, [x2]
    rtcall #0
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_status, 77);
}

TEST(Runtime, ForkReturnsTwiceAndWaitReaps) {
  TestRun t(R"(
    rtcall #8           // fork
    cbz x0, child
    // parent: wait for the child, then exit with child's pid == x0
    mov x9, x0          // child pid
    adrp x0, status
    add x0, x0, :lo12:status
    rtcall #9           // wait -> child pid
    sub x0, x0, x9      // 0 if the right child was reaped
    rtcall #0
  child:
    mov x0, #7
    rtcall #0
  .bss
  status:
    .zero 8
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_kind, ExitKind::kExited);
  EXPECT_EQ(t.P()->exit_status, 0);
  // Both slots reclaimed: the child's at wait(), the parent's at exit.
  EXPECT_EQ(t.rt.slots_in_use(), 0u);
}

TEST(Runtime, ForkChildSeesCopyOnWriteMemory) {
  TestRun t(R"(
    adrp x9, value
    add x9, x9, :lo12:value
    mov x1, #5
    str x1, [x9]
    rtcall #8           // fork
    cbz x0, child
    // parent: wait, then read value (must still be 5 = child's write
    // invisible); exit(value + child_exit=..)
    adrp x0, status
    add x0, x0, :lo12:status
    rtcall #9
    ldr x0, [x9]        // parent's copy: still 5
    rtcall #0
  child:
    mov x1, #99
    str x1, [x9]        // child's copy only
    ldr x0, [x9]
    rtcall #0           // child exits 99
  .bss
  status:
    .zero 8
  .data
  value:
    .quad 0
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_status, 5);
}

TEST(Runtime, PipeBetweenParentAndChild) {
  TestRun t(R"(
    adrp x0, fds
    add x0, x0, :lo12:fds
    rtcall #10          // pipe
    rtcall #8           // fork
    cbz x0, child
    // parent: read one byte, exit with it.
    adrp x9, fds
    add x9, x9, :lo12:fds
    ldr w0, [x9]        // read fd
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #1
    rtcall #2           // read (blocks until child writes)
    adrp x1, buf
    add x1, x1, :lo12:buf
    ldrb w0, [x1]
    rtcall #0
  child:
    adrp x9, fds
    add x9, x9, :lo12:fds
    ldr w0, [x9, #4]    // write fd
    adrp x1, byte
    add x1, x1, :lo12:byte
    mov x2, #1
    rtcall #1           // write
    mov x0, #0
    rtcall #0
  .data
  byte:
    .byte 65
  .bss
  fds:
    .zero 8
  buf:
    .zero 8
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_status, 65);
}

TEST(Runtime, PipeWriteWithNoReadersFails) {
  TestRun t(R"(
    adrp x0, fds
    add x0, x0, :lo12:fds
    rtcall #10          // pipe
    adrp x9, fds
    add x9, x9, :lo12:fds
    ldr w0, [x9]        // read fd
    rtcall #4           // close the only reader
    ldr w0, [x9, #4]    // write fd
    adrp x1, fds
    add x1, x1, :lo12:fds
    mov x2, #1
    rtcall #1           // write -> no readers left
    rtcall #0           // exit(write result)
  .bss
  fds:
    .zero 8
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_status, -22);  // EINVAL-style broken pipe
}

TEST(Runtime, PipeReadAfterWriterCloseDrainsThenEofs) {
  TestRun t(R"(
    adrp x0, fds
    add x0, x0, :lo12:fds
    rtcall #10          // pipe
    adrp x9, fds
    add x9, x9, :lo12:fds
    ldr w0, [x9, #4]    // write fd
    adrp x1, byte
    add x1, x1, :lo12:byte
    mov x2, #1
    rtcall #1           // write one byte
    ldr w0, [x9, #4]
    rtcall #4           // close the writer
    // Buffered data must still be readable after the writer is gone.
    ldr w0, [x9]
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #1
    rtcall #2           // read -> 1
    mov x10, x0
    // The next read must be EOF (0), not a hang.
    ldr w0, [x9]
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #1
    rtcall #2           // read -> 0
    cmp x10, #1
    b.ne bad
    cbnz x0, bad
    mov x0, #7
    rtcall #0
  bad:
    mov x0, #1
    rtcall #0
  .data
  byte:
    .byte 65
  .bss
  fds:
    .zero 8
  buf:
    .zero 8
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_status, 7);
}

TEST(Runtime, PipeWritePartialAtCapacityBoundary) {
  // Fill the pipe to one byte short of capacity, then write two bytes:
  // exactly one must be accepted.
  TestRun t(R"(
    adrp x0, fds
    add x0, x0, :lo12:fds
    rtcall #10          // pipe
    adrp x9, fds
    add x9, x9, :lo12:fds
    ldr w0, [x9, #4]    // write fd
    adrp x1, buf
    add x1, x1, :lo12:buf
    movz x2, #0xffff    // capacity - 1
    rtcall #1
    movz x10, #0xffff
    cmp x0, x10
    b.ne bad
    ldr w0, [x9, #4]
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #2
    rtcall #1           // only 1 byte of space left
    add x0, x0, #100    // exit(100 + partial count)
    rtcall #0
  bad:
    mov x0, #1
    rtcall #0
  .bss
  fds:
    .zero 8
  buf:
    .zero 65536
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_status, 101);
}

TEST(Runtime, PipeWriteBlocksWhenFull) {
  // A write to a completely full pipe with a live reader must block; with
  // nobody draining, the process deadlocks and RunUntilIdle reports it
  // still alive in kBlockedWrite.
  TestRun t(R"(
    adrp x0, fds
    add x0, x0, :lo12:fds
    rtcall #10          // pipe
    adrp x9, fds
    add x9, x9, :lo12:fds
    ldr w0, [x9, #4]    // write fd
    adrp x1, buf
    add x1, x1, :lo12:buf
    movz x2, #1, lsl #16  // 65536 = full capacity
    rtcall #1
    ldr w0, [x9, #4]
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #1
    rtcall #1           // blocks forever
    mov x0, #0
    rtcall #0
  .bss
  fds:
    .zero 8
  buf:
    .zero 65536
  )");
  ASSERT_GE(t.pid, 0);
  EXPECT_EQ(t.rt.RunUntilIdle(), 1);  // one live, deadlocked process
  EXPECT_EQ(t.P()->state, ProcState::kBlockedWrite);
}

TEST(Runtime, GetpidAndYield) {
  TestRun t(R"(
    rtcall #12          // getpid
    mov x9, x0
    rtcall #11          // yield
    mov x0, x9
    rtcall #0
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_status, t.pid);
}

TEST(Runtime, PreemptionInterleavesTwoSandboxes) {
  // Two independent infinite-ish loops must both make progress under the
  // preemptive scheduler.
  const std::string looper = R"(
    movz x9, #2000
  loop:
    subs x9, x9, #1
    b.ne loop
    rtcall #12
    rtcall #0
  )";
  RuntimeConfig cfg = TestConfig();
  cfg.timeslice_insts = 100;  // force many preemptions
  Runtime rt(cfg);
  auto elf_bytes = test::BuildElf(looper);
  ASSERT_TRUE(elf_bytes.ok());
  auto p1 = rt.Load({elf_bytes->data(), elf_bytes->size()});
  auto p2 = rt.Load({elf_bytes->data(), elf_bytes->size()});
  ASSERT_TRUE(p1.ok() && p2.ok());
  rt.RunUntilIdle();
  EXPECT_EQ(rt.proc(*p1)->exit_status, *p1);
  EXPECT_EQ(rt.proc(*p2)->exit_status, *p2);
}

TEST(Runtime, SandboxCannotTouchNeighbor) {
  // Program 2 writes a secret; program 1 tries to read/write program 2's
  // slot by constructing an out-of-slot pointer. All its accesses get
  // forced back into its own slot by the guards, so the secret is intact
  // and the attacker reads its own memory.
  const std::string victim = R"(
    adrp x9, secret
    add x9, x9, :lo12:secret
    movz x1, #0xbeef
    str x1, [x9]
    rtcall #11
    rtcall #11
    mov x0, #0
    rtcall #0
  .data
  secret:
    .quad 0
  )";
  // The attacker builds a pointer into "slot+1" (its own base + 4GiB).
  const std::string attacker = R"(
    movz x1, #0x1, lsl #32   // 4GiB - but the top 32 bits get masked
    adrp x2, probe
    add x2, x2, :lo12:probe
    add x1, x1, x2
    movz x3, #0x4141
    str x3, [x1]             // lands in OUR probe, not the neighbor
    ldr x0, [x2]
    rtcall #0
  .data
  probe:
    .quad 0
  )";
  Runtime rt(TestConfig());
  auto velf = test::BuildElf(victim);
  auto aelf = test::BuildElf(attacker);
  ASSERT_TRUE(velf.ok() && aelf.ok());
  auto vp = rt.Load({velf->data(), velf->size()});
  auto ap = rt.Load({aelf->data(), aelf->size()});
  ASSERT_TRUE(vp.ok() && ap.ok());
  rt.RunUntilIdle();
  // The attacker saw its own write (0x4141), proving the store was
  // redirected into its own sandbox.
  EXPECT_EQ(rt.proc(*ap)->exit_status, 0x4141);
  EXPECT_EQ(rt.proc(*vp)->exit_kind, ExitKind::kExited);
}

TEST(Runtime, UnverifiableProgramRejectedAtLoad) {
  auto elf_bytes = test::BuildElf("ldr x0, [x1]\nret\n",
                                  /*rewrite=*/false);
  ASSERT_TRUE(elf_bytes.ok());
  Runtime rt(TestConfig());
  auto p = rt.Load({elf_bytes->data(), elf_bytes->size()});
  EXPECT_FALSE(p.ok());
}

TEST(Runtime, FaultingSandboxIsKilledNotRuntime) {
  // A verified program can still fault (e.g. jumping into a guard region);
  // the runtime must contain it.
  // Hand-guarded code (no rewriter), with a hand-written exit sequence.
  TestRun t(R"(
    movz x1, #0x4000        // guard-region offset (16KiB): unmapped
    add x18, x21, w1, uxtw
    ldr x0, [x18]
    ldr x30, [x21]          // call-table entry 0 = exit
    blr x30
  )",
            /*rewrite=*/false);
  ASSERT_GE(t.pid, 0);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_kind, ExitKind::kKilled);
  // The supervisor records what happened and where for post-mortems.
  EXPECT_EQ(t.P()->disposition, Disposition::kKilled);
  EXPECT_EQ(t.P()->term_signal, kSigSegv);
  EXPECT_NE(t.P()->fault_detail.find("pc="), std::string::npos)
      << t.P()->fault_detail;
}

TEST(Runtime, WaitStatusEncodesChildTermination) {
  // A parent waiting on a faulting child must observe a wait status that
  // distinguishes "killed by signal N" (0x100|N) from a plain exit code.
  TestRun t(R"(
    ldr x30, [x21, #64]     // call-table entry 8 = fork
    blr x30
    cbz x0, child
    mov x0, sp              // parent: wait(&status) on the stack
    ldr x30, [x21, #72]     // entry 9 = wait
    blr x30
    ldr w0, [sp]
    ldr x30, [x21]          // entry 0 = exit(status word)
    blr x30
  child:
    movz x1, #0x4000        // guard-region offset: unmapped, faults
    add x18, x21, w1, uxtw
    ldr x0, [x18]
  )",
            /*rewrite=*/false);
  ASSERT_GE(t.pid, 0);
  t.rt.RunUntilIdle();
  ASSERT_EQ(t.P()->exit_kind, ExitKind::kExited);
  EXPECT_EQ(t.P()->exit_status, 0x100 | kSigSegv);
}

TEST(Runtime, FastYieldSwitchesDirectly) {
  // Proc A yields directly to proc B; B must run next and A's state is
  // preserved.
  const std::string a = R"(
    mov x19, #0
    rtcall #12          // getpid -> x0 (say 1); partner pid is pid+1
    add x0, x0, #1
    rtcall #14          // yield_to(partner)
    mov x0, #11
    rtcall #0
  )";
  const std::string b = R"(
    mov x0, #22
    rtcall #0
  )";
  Runtime rt(TestConfig());
  auto ea = test::BuildElf(a);
  auto eb = test::BuildElf(b);
  ASSERT_TRUE(ea.ok() && eb.ok());
  auto pa = rt.Load({ea->data(), ea->size()});
  auto pb = rt.Load({eb->data(), eb->size()});
  ASSERT_TRUE(pa.ok() && pb.ok());
  rt.RunUntilIdle();
  EXPECT_EQ(rt.proc(*pa)->exit_status, 11);
  EXPECT_EQ(rt.proc(*pb)->exit_status, 22);
}

TEST(Runtime, ManySlotsAccounting) {
  // Load a batch of sandboxes and ensure slot accounting scales; the
  // design supports ~65k slots but tests stay modest.
  const std::string prog = "mov x0, #1\nrtcall #0\n";
  Runtime rt(TestConfig());
  auto e = test::BuildElf(prog);
  ASSERT_TRUE(e.ok());
  std::vector<int> pids;
  for (int k = 0; k < 32; ++k) {
    auto p = rt.Load({e->data(), e->size()});
    ASSERT_TRUE(p.ok()) << p.error();
    pids.push_back(*p);
  }
  EXPECT_EQ(rt.slots_in_use(), 32u);
  rt.RunUntilIdle();
  for (int pid : pids) {
    EXPECT_EQ(rt.proc(pid)->exit_status, 1);
  }
}

TEST(Runtime, SlotReservationCapEnforced) {
  Runtime rt(TestConfig());
  // Reserving up to the cap must work in principle; we spot-check the
  // arithmetic rather than allocating 65k real slots.
  auto s1 = rt.ReserveSlot();
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(SlotBase(*s1), uint64_t{1} << 32);
  EXPECT_LE(SlotBase(kMaxSlots) + kSlotSize, uint64_t{1} << 48);
}

TEST(Runtime, LseekOnFile) {
  TestRun t(R"(
    adrp x0, path
    add x0, x0, :lo12:path
    mov x1, #0
    rtcall #3
    mov x9, x0
    mov x0, x9
    mov x1, #4
    mov x2, #0          // SEEK_SET
    rtcall #15
    mov x0, x9
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #1
    rtcall #2           // read 1 byte at offset 4
    adrp x1, buf
    add x1, x1, :lo12:buf
    ldrb w0, [x1]
    rtcall #0
  .data
  path:
    .asciz "/f"
  .bss
  buf:
    .zero 8
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.vfs().Install("/f", std::string("abcdEf"));
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_status, 'E');
}

TEST(Runtime, ClosedFdGivesEbadfEverywhere) {
  // After close, the descriptor must be dead for every call: a second
  // close, a write, and a read all return EBADF (-9).
  TestRun t(R"(
    adrp x0, path
    add x0, x0, :lo12:path
    mov x1, #0
    rtcall #3           // open -> fd
    mov x9, x0
    mov x0, x9
    rtcall #4           // close -> 0
    cbnz x0, bad
    mov x0, x9
    rtcall #4           // double close -> EBADF
    add x10, x0, #9     // 0 if EBADF
    mov x0, x9
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #1
    rtcall #1           // write to closed fd -> EBADF
    add x11, x0, #9
    mov x0, x9
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #1
    rtcall #2           // read from closed fd -> EBADF
    add x12, x0, #9
    orr x10, x10, x11
    orr x10, x10, x12
    cbnz x10, bad
    mov x0, #7
    rtcall #0
  bad:
    mov x0, #1
    rtcall #0
  .data
  path:
    .asciz "/f"
  .bss
  buf:
    .zero 8
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.vfs().Install("/f", std::string("x"));
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_status, 7);
}

TEST(Runtime, OutOfRangeFdGivesEbadf) {
  TestRun t(R"(
    movz x0, #999
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #1
    rtcall #1           // write to never-allocated fd
    rtcall #0
  .bss
  buf:
    .zero 8
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_status, -9);
}

TEST(Runtime, ForkInheritsFileFdAndWaitReaps) {
  // The child reads through a descriptor the parent opened before the
  // fork; the parent waits, checks the child's status word, and exits
  // with it. Both slots must be reclaimed.
  TestRun t(R"(
    adrp x0, path
    add x0, x0, :lo12:path
    mov x1, #0
    rtcall #3           // open -> fd (inherited below)
    mov x19, x0
    rtcall #8           // fork
    cbz x0, child
    adrp x0, status
    add x0, x0, :lo12:status
    rtcall #9           // wait -> child pid
    adrp x1, status
    add x1, x1, :lo12:status
    ldr w0, [x1]        // child's exit status
    rtcall #0
  child:
    mov x0, x19         // inherited fd
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #1
    rtcall #2           // read via inherited fd
    adrp x1, buf
    add x1, x1, :lo12:buf
    ldrb w0, [x1]       // exit with the byte read
    rtcall #0
  .data
  path:
    .asciz "/f"
  .bss
  status:
    .zero 8
  buf:
    .zero 8
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.vfs().Install("/f", std::string("Z"));
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_kind, ExitKind::kExited);
  EXPECT_EQ(t.P()->exit_status, 'Z');
  // wait() reaped the child's slot; the parent's went at exit.
  EXPECT_EQ(t.rt.slots_in_use(), 0u);
}

TEST(Runtime, BrkShrinkAndRegrow) {
  // Grow the heap, store a value; shrink below it; brk(0) must report the
  // shrunk break. Regrow and the fresh allocation must read back as
  // zeros: the pages stay mapped (high-water-mark contract) but the
  // shrink scrubs the freed range, so no stale bytes leak across a
  // shrink/regrow cycle.
  TestRun t(R"(
    mov x0, #0
    rtcall #5           // brk(0) -> base break
    mov x19, x0
    movz x1, #0x2, lsl #16
    add x0, x19, x1
    rtcall #5           // grow +128KiB
    sub x9, x0, #8
    movz x3, #0x5ca1
    str x3, [x9]        // plant a value near the top
    mov x0, x19
    rtcall #5           // shrink back to the original break
    mov x0, #0
    rtcall #5           // brk(0) must equal the shrunk break
    cmp x0, x19
    b.ne bad
    movz x1, #0x2, lsl #16
    add x0, x19, x1
    rtcall #5           // regrow over the same range
    ldr x0, [x9]        // freed-then-regrown memory must read as zero
    cmp x0, #0
    b.ne bad
    movz x0, #0x60d
    rtcall #0
  bad:
    mov x0, #1
    rtcall #0
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_status, 0x60d);
}

TEST(Runtime, ExitClosesPipeFdsNoLeak) {
  // The child exits without closing its pipe descriptors. Exit must close
  // them (DoExit walks the fd table): once the parent drops its own write
  // end, a read on the drained pipe must see EOF, not block on a writer
  // count leaked by the dead child.
  TestRun t(R"(
    adrp x0, fds
    add x0, x0, :lo12:fds
    rtcall #10          // pipe
    rtcall #8           // fork
    cbz x0, child
    adrp x9, fds
    add x9, x9, :lo12:fds
    ldr w0, [x9, #4]
    rtcall #4           // parent closes its write end
    adrp x0, status
    add x0, x0, :lo12:status
    rtcall #9           // wait for the child (its fds close at exit)
    ldr w0, [x9]
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #1
    rtcall #2           // read -> must be EOF (0), not a deadlock
    cbnz x0, bad
    mov x0, #7
    rtcall #0
  child:
    mov x0, #0
    rtcall #0           // exits with both pipe fds still open
  bad:
    mov x0, #1
    rtcall #0
  .bss
  fds:
    .zero 8
  status:
    .zero 8
  buf:
    .zero 8
  )");
  ASSERT_GE(t.pid, 0);
  EXPECT_EQ(t.rt.RunUntilIdle(), 0) << "leaked pipe writer caused deadlock";
  EXPECT_EQ(t.P()->exit_status, 7);
}

}  // namespace
}  // namespace lfi::runtime
