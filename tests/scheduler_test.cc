// Scheduler tests: round-robin fairness and starvation-freedom under
// preemption budgets, fast-yield ordering across N processes, and wakeup
// after a pipe unblocks. The trace subsystem serves as the oracle: the
// per-pid instruction counters prove fairness, and the cycle-stamped
// event ring proves ordering.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "pipeline_util.h"
#include "runtime/runtime.h"
#include "trace/trace.h"

namespace lfi::runtime {
namespace {

using trace::Counter;
using trace::Event;
using trace::EventKind;
using trace::TraceSink;

RuntimeConfig TestConfig() {
  RuntimeConfig cfg;
  cfg.core = arch::AppleM1LikeParams();
  return cfg;
}

// Index of the first ring event matching, or -1.
int FindEvent(const TraceSink& sink, EventKind kind, int pid,
              size_t from = 0) {
  for (size_t k = from; k < sink.ring().size(); ++k) {
    const Event& e = sink.ring().at(k);
    if (e.kind == kind && e.pid == pid) return static_cast<int>(k);
  }
  return -1;
}

TEST(Scheduler, RoundRobinSharesCpuFairly) {
  // Three identical CPU-bound loops, preempted every 500 instructions,
  // under a total budget none of them can finish within: the per-pid
  // retired-instruction counters must differ by at most one timeslice.
  const std::string looper = R"(
    movz x9, #0xffff
  loop:
    subs x9, x9, #1
    b.ne loop
    rtcall #0
  )";
  RuntimeConfig cfg = TestConfig();
  cfg.timeslice_insts = 500;
  Runtime rt(cfg);
  TraceSink sink;
  rt.set_trace_sink(&sink);
  auto e = test::BuildElf(looper);
  ASSERT_TRUE(e.ok()) << e.error();
  std::vector<int> pids;
  for (int k = 0; k < 3; ++k) {
    auto p = rt.Load({e->data(), e->size()});
    ASSERT_TRUE(p.ok()) << p.error();
    pids.push_back(*p);
  }
  rt.RunUntilIdle(/*max_total_insts=*/30000);

  std::vector<uint64_t> retired;
  for (int pid : pids) {
    const uint64_t r = sink.metrics(pid).Get(Counter::kInstRetired);
    EXPECT_GT(r, 0u) << "pid " << pid << " was starved";
    retired.push_back(r);
  }
  const auto [lo, hi] = std::minmax_element(retired.begin(), retired.end());
  EXPECT_LE(*hi - *lo, cfg.timeslice_insts)
      << "unfair split: " << retired[0] << "/" << retired[1] << "/"
      << retired[2];
}

TEST(Scheduler, PreemptionPreventsStarvationByBusyLoop) {
  // A non-yielding infinite loop is loaded FIRST; a short program loaded
  // after it must still complete — only preemption can make that happen.
  const std::string hog = R"(
  loop:
    b loop
  )";
  const std::string quick = R"(
    mov x0, #33
    rtcall #0
  )";
  RuntimeConfig cfg = TestConfig();
  cfg.timeslice_insts = 200;
  Runtime rt(cfg);
  TraceSink sink;
  rt.set_trace_sink(&sink);
  auto eh = test::BuildElf(hog);
  auto eq = test::BuildElf(quick);
  ASSERT_TRUE(eh.ok() && eq.ok());
  auto ph = rt.Load({eh->data(), eh->size()});
  auto pq = rt.Load({eq->data(), eq->size()});
  ASSERT_TRUE(ph.ok() && pq.ok());
  rt.RunUntilIdle(/*max_total_insts=*/100000);

  EXPECT_EQ(rt.proc(*pq)->exit_kind, ExitKind::kExited);
  EXPECT_EQ(rt.proc(*pq)->exit_status, 33);
  // The hog kept running before and after — it must dominate the retired
  // count, and the quick program must have been switched into at least
  // once (a context switch, not a fast yield: nobody yielded to it).
  EXPECT_GT(sink.metrics(*ph).Get(Counter::kInstRetired),
            sink.metrics(*pq).Get(Counter::kInstRetired));
  EXPECT_GE(sink.metrics(*pq).Get(Counter::kContextSwitches), 1u);
}

TEST(Scheduler, YieldToChainRunsInOrder) {
  // pid1 -> pid2 -> pid3 via the fast direct yield. The event ring must
  // show the two yield-to events in chain order, and each handoff must be
  // accounted as a fast yield (not a full context switch) on the target.
  // All three run the same image; pid3's yield to the nonexistent pid4
  // fails with ESRCH, which must not emit an event.
  const std::string yielder = R"(
    rtcall #12          // getpid
    add x0, x0, #1
    rtcall #14          // yield_to(pid+1)
    mov x0, #0
    rtcall #0
  )";
  Runtime rt(TestConfig());
  TraceSink sink;
  rt.set_trace_sink(&sink);
  auto ey = test::BuildElf(yielder);
  ASSERT_TRUE(ey.ok()) << ey.error();
  auto p1 = rt.Load({ey->data(), ey->size()});
  auto p2 = rt.Load({ey->data(), ey->size()});
  auto p3 = rt.Load({ey->data(), ey->size()});
  ASSERT_TRUE(p1.ok() && p2.ok() && p3.ok());
  rt.RunUntilIdle();

  for (int pid : {*p1, *p2, *p3}) {
    EXPECT_EQ(rt.proc(pid)->exit_status, 0);
  }
  const int y1 = FindEvent(sink, EventKind::kYieldTo, *p1);
  const int y2 = FindEvent(sink, EventKind::kYieldTo, *p2);
  ASSERT_GE(y1, 0);
  ASSERT_GE(y2, 0);
  EXPECT_LT(y1, y2) << "yield chain ran out of order";
  EXPECT_EQ(sink.ring().at(y1).arg0, static_cast<uint64_t>(*p2));
  EXPECT_EQ(sink.ring().at(y2).arg0, static_cast<uint64_t>(*p3));
  // Each yield target was switched into on the fast path.
  EXPECT_GE(sink.metrics(*p2).Get(Counter::kFastYields), 1u);
  EXPECT_GE(sink.metrics(*p3).Get(Counter::kFastYields), 1u);
  // Timestamps along the chain are nondecreasing simulated cycles.
  EXPECT_LE(sink.ring().at(y1).start, sink.ring().at(y2).start);
  // pid3's failed yield to pid4 left no event behind.
  EXPECT_EQ(FindEvent(sink, EventKind::kYieldTo, *p3), -1);
}

TEST(Scheduler, PipeUnblockWakesReader) {
  // After a fork the child runs its first timeslice before the parent
  // resumes, so the child's read of the still-empty pipe must block; the
  // parent's write must wake it. The event ring must show: child
  // read-blocks, parent writes the pipe, child's read completes — in that
  // order — and the byte must flow through to the parent via wait().
  const std::string prog = R"(
    adrp x0, fds
    add x0, x0, :lo12:fds
    rtcall #10          // pipe
    rtcall #8           // fork
    cbz x0, child
    adrp x9, fds
    add x9, x9, :lo12:fds
    ldr w0, [x9, #4]
    adrp x1, byte
    add x1, x1, :lo12:byte
    mov x2, #1
    rtcall #1           // write wakes the blocked child
    adrp x0, status
    add x0, x0, :lo12:status
    rtcall #9           // wait for the child
    adrp x1, status
    add x1, x1, :lo12:status
    ldr w0, [x1]
    rtcall #0           // exit(child's status == the byte)
  child:
    adrp x9, fds
    add x9, x9, :lo12:fds
    ldr w0, [x9]
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #1
    rtcall #2           // read: blocks, parent has not written yet
    adrp x1, buf
    add x1, x1, :lo12:buf
    ldrb w0, [x1]
    rtcall #0           // exit(byte read)
  .data
  byte:
    .byte 65
  .bss
  fds:
    .zero 8
  status:
    .zero 8
  buf:
    .zero 8
  )";
  Runtime rt(TestConfig());
  TraceSink sink;
  rt.set_trace_sink(&sink);
  auto e = test::BuildElf(prog);
  ASSERT_TRUE(e.ok()) << e.error();
  auto pp = rt.Load({e->data(), e->size()});
  ASSERT_TRUE(pp.ok());
  EXPECT_EQ(rt.RunUntilIdle(), 0);
  EXPECT_EQ(rt.proc(*pp)->exit_status, 65);

  const int parent = *pp;
  const int child = parent + 1;
  const int blocked = FindEvent(sink, EventKind::kSyscallBlock, child);
  ASSERT_GE(blocked, 0) << "child never blocked on the empty pipe";
  EXPECT_EQ(sink.ring().at(blocked).arg0,
            static_cast<uint64_t>(Rtcall::kRead));
  const int wrote = FindEvent(sink, EventKind::kPipeWrite, parent);
  ASSERT_GE(wrote, 0);
  const int readk = FindEvent(sink, EventKind::kPipeRead, child);
  ASSERT_GE(readk, 0);
  EXPECT_LT(blocked, wrote);
  EXPECT_LT(wrote, readk);
  EXPECT_EQ(sink.metrics(child).Get(Counter::kPipeBytesRead), 1u);
  EXPECT_EQ(sink.metrics(parent).Get(Counter::kPipeBytesWritten), 1u);
}

TEST(Scheduler, BlockedWriterWakesWhenReaderDrains) {
  // Writer fills the pipe to capacity then writes one more byte (blocks);
  // the forked reader — kept busy spinning for several timeslices so it
  // cannot drain early — then drains, unblocking the writer, which exits
  // cleanly. Covers the kBlockedWrite -> TryUnblock path.
  const std::string prog = R"(
    adrp x0, fds
    add x0, x0, :lo12:fds
    rtcall #10          // pipe
    rtcall #8           // fork
    cbz x0, child
    adrp x9, fds
    add x9, x9, :lo12:fds
    ldr w0, [x9, #4]
    adrp x1, big
    add x1, x1, :lo12:big
    movz x2, #1, lsl #16  // 65536: fill to capacity
    rtcall #1
    adrp x9, fds
    add x9, x9, :lo12:fds
    ldr w0, [x9, #4]
    adrp x1, big
    add x1, x1, :lo12:big
    mov x2, #1
    rtcall #1           // blocks: pipe full
    cmp x0, #1          // completed write returns 1
    b.ne bad
    mov x0, #0
    rtcall #0
  child:
    movz x10, #4, lsl #16  // ~5 timeslices of spinning before draining
  spin:
    subs x10, x10, #1
    b.ne spin
    adrp x9, fds
    add x9, x9, :lo12:fds
    ldr w0, [x9]
    adrp x1, big
    add x1, x1, :lo12:big
    movz x2, #1, lsl #16
    rtcall #2           // drain
    mov x0, #0
    rtcall #0
  bad:
    mov x0, #1
    rtcall #0
  .bss
  fds:
    .zero 8
  big:
    .zero 65536
  )";
  Runtime rt(TestConfig());
  TraceSink sink;
  rt.set_trace_sink(&sink);
  auto e = test::BuildElf(prog);
  ASSERT_TRUE(e.ok()) << e.error();
  auto pp = rt.Load({e->data(), e->size()});
  ASSERT_TRUE(pp.ok());
  EXPECT_EQ(rt.RunUntilIdle(), 0);
  EXPECT_EQ(rt.proc(*pp)->exit_status, 0);
  const int blocked = FindEvent(sink, EventKind::kSyscallBlock, *pp);
  ASSERT_GE(blocked, 0) << "writer never blocked on the full pipe";
  EXPECT_EQ(sink.ring().at(blocked).arg0,
            static_cast<uint64_t>(Rtcall::kWrite));
  // 65536 + the 1 retried byte.
  EXPECT_EQ(sink.metrics(*pp).Get(Counter::kPipeBytesWritten), 65537u);
}

}  // namespace
}  // namespace lfi::runtime
