// Security-focused tests: Section 7.1 hardening features and
// escape-attempt property tests with randomized hostile programs.

#include <gtest/gtest.h>

#include "emu/timing.h"
#include "pipeline_util.h"
#include "runtime/runtime.h"

namespace lfi {
namespace {

using runtime::ExitKind;
using runtime::ProcState;
using runtime::Runtime;
using runtime::RuntimeConfig;

RuntimeConfig Config() {
  RuntimeConfig cfg;
  cfg.core = arch::AppleM1LikeParams();
  return cfg;
}

// --- Section 7.1: LL/SC side-channel mitigation ---

TEST(Security, LlScDisallowedByVerifierOption) {
  const std::string src =
      "add x18, x21, w0, uxtw\nldxr x1, [x18]\nstxr w2, x1, [x18]\nret\n";
  auto elf_bytes = test::BuildElf(src, /*rewrite=*/false);
  ASSERT_TRUE(elf_bytes.ok());
  // Allowed by default...
  {
    Runtime rt(Config());
    EXPECT_TRUE(rt.Load({elf_bytes->data(), elf_bytes->size()}).ok());
  }
  // ...rejected when the deployment disables LL/SC (S2C mitigation).
  {
    RuntimeConfig cfg = Config();
    cfg.verify.allow_llsc = false;
    Runtime rt(cfg);
    auto pid = rt.Load({elf_bytes->data(), elf_bytes->size()});
    EXPECT_FALSE(pid.ok());
  }
  // Acquire/release (not LL/SC) stays allowed: only the exploitable
  // instructions are removed.
  {
    RuntimeConfig cfg = Config();
    cfg.verify.allow_llsc = false;
    Runtime rt(cfg);
    auto ok_elf = test::BuildElf(
        "add x18, x21, w0, uxtw\nldar x1, [x18]\nret\n", false);
    ASSERT_TRUE(ok_elf.ok());
    EXPECT_TRUE(rt.Load({ok_elf->data(), ok_elf->size()}).ok());
  }
}

// --- Section 7.1: software-context branch-predictor isolation ---

TEST(Security, PredictorContextsAreIsolated) {
  emu::BranchPredictor bp;
  // Context 1 trains PC 0x1000 strongly taken.
  bp.SetContext(1);
  for (int k = 0; k < 8; ++k) bp.PredictConditional(0x1000, true);
  EXPECT_TRUE(bp.PredictConditional(0x1000, true));
  // Context 2 must not observe that training: its first not-taken branch
  // at the same PC sees a cold (weakly-taken) entry, not a poisoned
  // strongly-taken one; after it trains not-taken, returning to context 1
  // must also not leak context 2's state into context 1's view.
  bp.SetContext(2);
  for (int k = 0; k < 8; ++k) bp.PredictConditional(0x1000, false);
  EXPECT_TRUE(bp.PredictConditional(0x1000, false));
  bp.SetContext(1);
  // Context 1's entry was re-tagged by context 2, so it's cold again -
  // but crucially it is NOT trained toward context 2's direction in a way
  // an attacker chose: the reset state is the architectural default.
  bp.PredictConditional(0x1000, true);
  for (int k = 0; k < 4; ++k) bp.PredictConditional(0x1000, true);
  EXPECT_TRUE(bp.PredictConditional(0x1000, true));
}

TEST(Security, IndirectTargetsDoNotLeakAcrossContexts) {
  emu::BranchPredictor bp;
  bp.SetContext(1);
  bp.PredictIndirect(0x2000, 0xAAAA);
  EXPECT_TRUE(bp.PredictIndirect(0x2000, 0xAAAA));
  // A different context never gets context 1's target as a prediction -
  // this is exactly the cross-sandbox poisoning vector.
  bp.SetContext(2);
  EXPECT_FALSE(bp.PredictIndirect(0x2000, 0xAAAA));
}

TEST(Security, SpectreIsolationCostsCyclesOnSwitches) {
  const std::string looper = R"(
    movz x9, #500
  loop:
    rtcall #11
    subs x9, x9, #1
    b.ne loop
    mov x0, #0
    rtcall #0
  )";
  auto run = [&](bool isolate) {
    RuntimeConfig cfg = Config();
    cfg.spectre_ctx_isolation = isolate;
    Runtime rt(cfg);
    auto e = test::BuildElf(looper);
    auto p1 = rt.Load({e->data(), e->size()});
    auto p2 = rt.Load({e->data(), e->size()});
    EXPECT_TRUE(p1.ok() && p2.ok());
    rt.RunUntilIdle();
    return rt.Cycles();
  };
  // Isolation costs SCXTNUM writes on every cross-sandbox switch (plus
  // predictor cold misses), so it must be measurably more expensive.
  EXPECT_GT(run(true), run(false));
}

// --- Escape-attempt property tests ---

// Generates a hostile-but-verifier-clean program: it uses correct guard
// forms but with attacker-controlled garbage values, then probes memory
// and jumps. No matter the values, every effect must stay inside its own
// sandbox (or fault).
std::string HostileProgram(uint64_t seed) {
  uint64_t state = seed;
  auto rnd = [&]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 32;
  };
  std::string src;
  src += "movz x1, #" + std::to_string(rnd() & 0xffff) + ", lsl #48\n";
  src += "movk x1, #" + std::to_string(rnd() & 0xffff) + ", lsl #32\n";
  src += "movk x1, #" + std::to_string(rnd() & 0xffff) + ", lsl #16\n";
  src += "movk x1, #" + std::to_string(rnd() & 0xffff) + "\n";
  for (int k = 0; k < 6; ++k) {
    switch (rnd() % 4) {
      case 0:
        src += "add x18, x21, w1, uxtw\nstr x1, [x18]\n";
        break;
      case 1:
        src += "str x1, [x21, w1, uxtw]\n";
        break;
      case 2:
        src += "add x18, x21, w1, uxtw\nldr x2, [x18, #" +
               std::to_string((rnd() % 4096) * 8) + "]\n";
        break;
      case 3:
        src += "add x1, x1, #" + std::to_string(rnd() % 4096) + "\n";
        break;
    }
  }
  src += "add x18, x21, w1, uxtw\nbr x18\n";
  return src;
}

class EscapeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EscapeProperty, HostileSandboxNeverTouchesVictim) {
  // Victim writes sentinels across its data and yields; attacker runs a
  // randomized hostile program. Afterwards the victim's memory must be
  // intact and the runtime alive.
  const std::string victim = R"(
    adrp x9, canary
    add x9, x9, :lo12:canary
    movz x1, #0xC0DE
    str x1, [x9]
    str x1, [x9, #4088]
    mov x19, #60
  spin:
    rtcall #11
    subs x19, x19, #1
    b.ne spin
    ldr x2, [x9]
    ldr x3, [x9, #4088]
    eor x0, x2, x3      // 0 if both intact and equal
    cmp x2, x1
    b.eq okk
    mov x0, #1
  okk:
    rtcall #0
  .bss
  canary:
    .zero 8192
  )";
  Runtime rt(Config());
  auto velf = test::BuildElf(victim);
  ASSERT_TRUE(velf.ok()) << velf.error();
  auto vpid = rt.Load({velf->data(), velf->size()});
  ASSERT_TRUE(vpid.ok());

  auto aelf = test::BuildElf(HostileProgram(GetParam()), /*rewrite=*/false);
  ASSERT_TRUE(aelf.ok()) << aelf.error();
  auto apid = rt.Load({aelf->data(), aelf->size()});
  // The hostile program uses only legal guard forms, so it must load.
  ASSERT_TRUE(apid.ok()) << apid.error();

  rt.RunUntilIdle(50 * 1000 * 1000);
  const auto* v = rt.proc(*vpid);
  EXPECT_EQ(v->exit_kind, ExitKind::kExited);
  EXPECT_EQ(v->exit_status, 0) << "victim memory was modified!";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EscapeProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

TEST(Security, RuntimeCallTableIsReadOnlyToSandbox) {
  // Overwriting the call table would redirect runtime calls; the table
  // page is mapped read-only, so a store to offset 0 must fault.
  const std::string attack = R"(
    mov x1, #0
    str x1, [x21, w1, uxtw]   // store to sandbox base = call table
    mov x0, #0
    ldr x30, [x21]
    blr x30
  )";
  Runtime rt(Config());
  auto elf_bytes = test::BuildElf(attack, /*rewrite=*/false);
  ASSERT_TRUE(elf_bytes.ok());
  auto pid = rt.Load({elf_bytes->data(), elf_bytes->size()});
  ASSERT_TRUE(pid.ok()) << pid.error();
  rt.RunUntilIdle();
  EXPECT_EQ(rt.proc(*pid)->exit_kind, ExitKind::kKilled);
}

TEST(Security, GuardRegionBoundaryArithmetic) {
  // Section 4.2's safety argument, executed: sp at the very top of the
  // sandbox, then the maximum chain of unguarded drift (pre-index step
  // <= 1KiB, immediate offset <= 32KiB) must land inside the 48KiB guard
  // region - trapping, not escaping into the neighbor's table page.
  const std::string probe = R"(
    // Move sp to the last mapped stack byte region (top of stack).
    mov w22, wsp
    add sp, x21, x22
    str x0, [sp, #-256]!      // fine: inside the stack
    sub sp, sp, #1008         // elision-eligible small adjust...
    ldr x0, [sp, #32760]      // ...whose access reaches upward
    mov x0, #0
    ldr x30, [x21]
    blr x30
  )";
  // 2^15 + 2^10 = 33792 < 49152: whatever happens, the access stays in
  // sandbox or its guard region. Build unrewritten to keep the exact
  // shape; it must verify.
  Runtime rt(Config());
  auto elf_bytes = test::BuildElf(probe, /*rewrite=*/false);
  ASSERT_TRUE(elf_bytes.ok());
  auto pid = rt.Load({elf_bytes->data(), elf_bytes->size()});
  ASSERT_TRUE(pid.ok()) << pid.error();
  rt.RunUntilIdle();
  // Exited or killed-by-guard-trap are both safe outcomes; what may NOT
  // happen is a successful access outside the slot (the emulator would
  // have let it through only if mapped - and the neighbor's pages are the
  // only thing there, so check the runtime is intact and no neighbor
  // exists to corrupt).
  const auto* p = rt.proc(*pid);
  EXPECT_TRUE(p->exit_kind == ExitKind::kExited ||
              p->exit_kind == ExitKind::kKilled);
}

}  // namespace
}  // namespace lfi
