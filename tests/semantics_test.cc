// Depth tests: instruction-classification helpers (the predicates the
// verifier's security argument rests on), extra interpreter semantics,
// rewriter fallback paths, and verifier boundary sweeps.

#include <gtest/gtest.h>

#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "asmtext/printer.h"
#include "emu/machine.h"
#include "rewriter/rewriter.h"
#include "verifier/verifier.h"

namespace lfi {
namespace {

using arch::Inst;
using arch::Mn;
using arch::Reg;
using arch::Width;

Inst ParseI(const std::string& s) {
  auto r = asmtext::ParseInst(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.error();
  return r.ok() ? r->inst : Inst{};
}

// --- Classification predicates (security-load-bearing) ---

TEST(Classify, WritesGprCoversAllChannels) {
  // Destination.
  EXPECT_TRUE(arch::WritesGpr(ParseI("add x5, x1, #1"), Reg::X(5)));
  EXPECT_FALSE(arch::WritesGpr(ParseI("add x5, x1, #1"), Reg::X(1)));
  // Load target(s).
  EXPECT_TRUE(arch::WritesGpr(ParseI("ldr x7, [sp]"), Reg::X(7)));
  EXPECT_TRUE(arch::WritesGpr(ParseI("ldp x7, x8, [sp]"), Reg::X(8)));
  // Writeback.
  EXPECT_TRUE(arch::WritesGpr(ParseI("ldr x0, [x3], #8"), Reg::X(3)));
  EXPECT_TRUE(arch::WritesGpr(ParseI("str x0, [sp, #-16]!"), Reg::Sp()));
  // stxr status register.
  EXPECT_TRUE(arch::WritesGpr(ParseI("stxr w4, x1, [sp]"), Reg::X(4)));
  // Implicit link-register writes.
  EXPECT_TRUE(arch::WritesGpr(ParseI("bl somewhere"), Reg::X(30)));
  EXPECT_TRUE(arch::WritesGpr(ParseI("blr x3"), Reg::X(30)));
  EXPECT_FALSE(arch::WritesGpr(ParseI("br x3"), Reg::X(30)));
  // Stores write nothing (without writeback).
  EXPECT_FALSE(arch::WritesGpr(ParseI("str x0, [sp]"), Reg::X(0)));
  // Writes to the zero register are discarded.
  EXPECT_FALSE(arch::WritesGpr(ParseI("subs xzr, x1, #1"), Reg::Zr()));
}

TEST(Classify, WriteZeroExtendsIsExactlyThe32BitWrites) {
  const Reg x22 = Reg::X(22);
  // W-width ALU destinations zero-extend.
  EXPECT_TRUE(arch::WriteZeroExtends(ParseI("add w22, w1, #1"), x22));
  EXPECT_TRUE(arch::WriteZeroExtends(ParseI("orr w22, wzr, w3"), x22));
  EXPECT_TRUE(arch::WriteZeroExtends(ParseI("movz w22, #9"), x22));
  // X-width do not.
  EXPECT_FALSE(arch::WriteZeroExtends(ParseI("add x22, x1, #1"), x22));
  EXPECT_FALSE(arch::WriteZeroExtends(ParseI("movz x22, #9"), x22));
  // W loads zero-extend; sub-word unsigned loads zero-extend; sign-
  // extending loads to X width do NOT.
  EXPECT_TRUE(arch::WriteZeroExtends(ParseI("ldr w22, [sp]"), x22));
  EXPECT_TRUE(arch::WriteZeroExtends(ParseI("ldrb w22, [sp]"), x22));
  EXPECT_FALSE(arch::WriteZeroExtends(ParseI("ldrsw x22, [sp]"), x22));
  EXPECT_FALSE(arch::WriteZeroExtends(ParseI("ldr x22, [sp]"), x22));
  // Writeback is a full 64-bit write.
  EXPECT_FALSE(
      arch::WriteZeroExtends(ParseI("ldr w0, [x22], #8"), x22));
  // adr produces a 64-bit address even though width is X-by-default.
  Inst adr = ParseI("adr x22, label");
  adr.width = Width::kW;  // hostile width tag must not fool the check
  EXPECT_FALSE(arch::WriteZeroExtends(adr, x22));
  // stxr status is a 32-bit value.
  EXPECT_TRUE(arch::WriteZeroExtends(ParseI("stxr w22, x1, [sp]"), x22));
}

TEST(Classify, GuardPredicateIsExact) {
  EXPECT_TRUE(arch::IsGuardFor(ParseI("add x18, x21, w4, uxtw"), Reg::X(18)));
  // Every near-miss must fail.
  EXPECT_FALSE(arch::IsGuardFor(ParseI("add x18, x21, w4, uxtw"), Reg::X(23)));
  EXPECT_FALSE(arch::IsGuardFor(ParseI("add x18, x21, w4, sxtw"), Reg::X(18)));
  EXPECT_FALSE(
      arch::IsGuardFor(ParseI("add x18, x21, w4, uxtw #1"), Reg::X(18)));
  EXPECT_FALSE(arch::IsGuardFor(ParseI("add x18, x20, w4, uxtw"), Reg::X(18)));
  EXPECT_FALSE(arch::IsGuardFor(ParseI("add w18, w21, w4, uxtw"), Reg::X(18)));
  EXPECT_FALSE(arch::IsGuardFor(ParseI("sub x18, x21, w4, uxtw"), Reg::X(18)));
}

// --- Extra interpreter semantics ---

struct ExecCase {
  const char* name;
  const char* src;    // ends with brk #0
  int reg;            // register to inspect
  uint64_t expected;
};

class ExecTest : public ::testing::TestWithParam<ExecCase> {};

TEST_P(ExecTest, ComputesExpectedValue) {
  emu::AddressSpace space;
  emu::Machine machine(&space, arch::AppleM1LikeParams());
  auto file = asmtext::Parse(GetParam().src);
  ASSERT_TRUE(file.ok()) << file.error();
  asmtext::LayoutSpec spec;
  spec.text_offset = 0x100000;
  auto img = asmtext::Assemble(*file, spec);
  ASSERT_TRUE(img.ok()) << img.error();
  ASSERT_TRUE(space.Map(0x100000, 0x40000,
                        emu::kPermRead | emu::kPermExec).ok());
  ASSERT_TRUE(space.Map(0x200000, 0x40000,
                        emu::kPermRead | emu::kPermWrite).ok());
  ASSERT_TRUE(space.HostWrite(img->text_addr,
                              {img->text.data(), img->text.size()}).ok());
  if (!img->data.empty()) {
    ASSERT_TRUE(space.HostWrite(img->data_addr,
                                {img->data.data(), img->data.size()}).ok());
  }
  machine.state().pc = img->entry;
  machine.state().sp = 0x220000;
  ASSERT_EQ(machine.Run(100000), emu::StopReason::kBrk)
      << machine.fault().detail;
  EXPECT_EQ(machine.state().x[GetParam().reg], GetParam().expected)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExecTest,
    ::testing::Values(
        ExecCase{"csinv", "mov x1, #1\ncmp x1, #2\ncsinv x0, x1, xzr, eq\n"
                          "brk #0", 0, ~uint64_t{0}},
        ExecCase{"csneg", "mov x1, #5\ncmp x1, #5\ncsneg x0, xzr, x1, ne\n"
                          "brk #0", 0, static_cast<uint64_t>(-5)},
        ExecCase{"clz_w", "movz w1, #0x8000\nclz w0, w1\nbrk #0", 0, 16},
        ExecCase{"rbit", "mov x1, #1\nrbit x0, x1\nbrk #0", 0,
                 uint64_t{1} << 63},
        ExecCase{"rev", "movz x1, #0x1234\nrev x0, x1\nbrk #0", 0,
                 uint64_t{0x3412} << 48},
        ExecCase{"rev_w", "movz w1, #0x1234\nrev w0, w1\nbrk #0", 0,
                 uint64_t{0x34120000}},
        ExecCase{"movk_patch",
                 "movz x0, #1, lsl #48\nmovk x0, #0xbeef\nbrk #0", 0,
                 (uint64_t{1} << 48) | 0xbeef},
        ExecCase{"madd_w", "mov w1, #7\nmov w2, #6\nmov w3, #1\n"
                           "madd w0, w1, w2, w3\nbrk #0", 0, 43},
        ExecCase{"msub", "mov x1, #7\nmov x2, #6\nmov x3, #100\n"
                         "msub x0, x1, x2, x3\nbrk #0", 0, 58},
        ExecCase{"sdiv_neg", "movn x1, #6\nmov x2, #2\nsdiv x0, x1, x2\n"
                             "brk #0", 0, static_cast<uint64_t>(-3)},
        ExecCase{"udiv_w", "movn w1, #0\nmov w2, #16\nudiv w0, w1, w2\n"
                           "brk #0", 0, 0xffffffffu / 16},
        ExecCase{"fmadd", "mov x1, #3\nmov x2, #4\nmov x3, #5\n"
                          "scvtf d0, x1\nscvtf d1, x2\nscvtf d2, x3\n"
                          "fmadd d3, d0, d1, d2\nfcvtzs x0, d3\nbrk #0",
                 0, 17},
        ExecCase{"fdiv_s", "mov w1, #7\nmov w2, #2\nscvtf s0, w1\n"
                           "scvtf s1, w2\nfdiv s2, s0, s1\nfcvtzs w0, s2\n"
                           "brk #0", 0, 3},
        ExecCase{"fmov_gpr", "mov x1, #9\nscvtf d0, x1\nfmov x0, d0\n"
                             "fmov d1, x0\nfcvtzs x0, d1\nbrk #0", 0, 9},
        ExecCase{"fcvtzs_sat",
                 "movz x1, #0x43F0, lsl #48\nfmov d0, x1\n"  // 2^64 as f64
                 "fcvtzs x0, d0\nbrk #0", 0,
                 static_cast<uint64_t>(std::numeric_limits<int64_t>::max())},
        ExecCase{"vfmul",
                 "mov x1, #3\nscvtf s0, w1\nfmov s1, s0\n"
                 "mov x2, #4\nscvtf s2, w2\n"
                 // build v3 = [3,3,..] via two 64-bit fmov paths is beyond
                 // the subset; just multiply scalar lanes 0.
                 "fmul s4, s0, s2\nfcvtzs w0, s4\nbrk #0", 0, 12},
        ExecCase{"ror_shifted_or",
                 "mov x1, #1\norr x0, xzr, x1, ror #1\nbrk #0", 0,
                 uint64_t{1} << 63},
        ExecCase{"adds_carry",
                 "movn x1, #0\nadds x2, x1, #1\ncset w0, hs\nbrk #0", 0, 1},
        ExecCase{"subs_borrow",
                 "mov x1, #1\nsubs x2, x1, #2\ncset w0, lo\nbrk #0", 0, 1},
        ExecCase{"tbz_bit63",
                 "movn x1, #0\nmov x0, #0\ntbz x1, #63, skip\nmov x0, #1\n"
                 "skip:\nbrk #0", 0, 1}),
    [](const ::testing::TestParamInfo<ExecCase>& info) {
      return info.param.name;
    });

// --- Rewriter fallback paths ---

TEST(RewriterFallback, LargeImmediateUsesBasicGuardAtO1) {
  auto f = asmtext::Parse("ldr x0, [x1, #8008]\n");
  ASSERT_TRUE(f.ok());
  rewriter::RewriteOptions opts;
  opts.level = rewriter::OptLevel::kO1;
  auto out = rewriter::Rewrite(*f, opts);
  ASSERT_TRUE(out.ok()) << out.error();
  // 8008 is not encodable in a single w-add: expect the x18 basic guard
  // with the offset kept on the access.
  const std::string text = asmtext::Print(*out);
  EXPECT_NE(text.find("add x18, x21, w1, uxtw"), std::string::npos) << text;
  EXPECT_NE(text.find("[x18, #8008]"), std::string::npos) << text;
  // And it must verify (the offset stays inside the guard region).
  asmtext::LayoutSpec spec;
  auto img = asmtext::Assemble(*out, spec);
  ASSERT_TRUE(img.ok());
  EXPECT_TRUE(
      verifier::Verify({img->text.data(), img->text.size()}).ok);
}

TEST(RewriterFallback, SpRegisterOffsetAccessIsStaged) {
  auto f = asmtext::Parse("ldr x0, [sp, x2, lsl #3]\n");
  ASSERT_TRUE(f.ok());
  auto out = rewriter::Rewrite(*f, rewriter::RewriteOptions{});
  ASSERT_TRUE(out.ok()) << out.error();
  asmtext::LayoutSpec spec;
  auto img = asmtext::Assemble(*out, spec);
  ASSERT_TRUE(img.ok()) << img.error();
  EXPECT_TRUE(verifier::Verify({img->text.data(), img->text.size()}).ok);
}

TEST(RewriterFallback, QRegisterLargeOffsetStaysInGuardRegion) {
  // 16-byte accesses can encode scaled offsets up to 65520, beyond the
  // guard region; the rewriter must produce something the verifier
  // accepts anyway.
  auto f = asmtext::Parse("ldr q0, [x1, #65520]\n");
  ASSERT_TRUE(f.ok());
  auto out = rewriter::Rewrite(*f, rewriter::RewriteOptions{});
  ASSERT_TRUE(out.ok()) << out.error();
  asmtext::LayoutSpec spec;
  auto img = asmtext::Assemble(*out, spec);
  ASSERT_TRUE(img.ok()) << img.error();
  auto res = verifier::Verify({img->text.data(), img->text.size()});
  EXPECT_TRUE(res.ok) << res.reason;
}

// --- Verifier offset boundary sweep ---

struct BoundCase {
  unsigned size;     // access bytes
  int64_t imm;       // offset
  bool accept;
};

class GuardBoundary : public ::testing::TestWithParam<BoundCase> {};

TEST_P(GuardBoundary, OffsetLimitEnforced) {
  const auto& c = GetParam();
  const char* rt = c.size == 16 ? "q0" : (c.size == 8 ? "x0" : "w0");
  const char* op = c.size == 1 ? "ldrb" : c.size == 2 ? "ldrh" : "ldr";
  std::string src = "add x18, x21, w1, uxtw\n";
  src += std::string(op) + " " + rt + ", [x18, #" + std::to_string(c.imm) +
         "]\n";
  auto f = asmtext::Parse(src);
  ASSERT_TRUE(f.ok()) << f.error();
  asmtext::LayoutSpec spec;
  auto img = asmtext::Assemble(*f, spec);
  if (!img.ok()) {
    // Offsets that don't even encode are vacuously rejected.
    EXPECT_FALSE(c.accept);
    return;
  }
  auto res = verifier::Verify({img->text.data(), img->text.size()});
  EXPECT_EQ(res.ok, c.accept) << res.reason;
}

INSTANTIATE_TEST_SUITE_P(
    Offsets, GuardBoundary,
    ::testing::Values(
        // 48KiB guard region: anything whose end fits inside is safe.
        BoundCase{8, 32760, true},           // max scaled 8-byte offset
        BoundCase{4, 16380, true},
        BoundCase{1, 4095, true},
        BoundCase{8, -256, true},            // unscaled negative
        BoundCase{16, 49136, true},          // 49136+16 == 49152 exactly
        BoundCase{16, 49152, false},         // first byte past the guard
        BoundCase{16, 65520, false}));       // encodable but way out

}  // namespace
}  // namespace lfi
