// Serving control-plane tests (src/serve/, docs/SERVING.md): SpawnPool
// edge paths (empty-pool cold spawn, slot-exhausted prewarm, parked pids
// killed behind the pool's back), recycle-and-repark, deterministic
// traffic replay, queue-depth and deadline shedding, the warm-vs-cold
// throughput gap, and storm chaos mid-serving leaving bystander tenants'
// SLOs intact — plus the resilience layer: inclusive deadline/SLO
// boundaries, config validation, per-tenant quotas and DRR fairness
// under a flooding tenant, deadline-aware retries, the circuit-breaker
// state machine, the degradation ladder, and tenant-scoped chaos with
// recycling left on.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "pipeline_util.h"
#include "runtime/layout.h"
#include "runtime/runtime.h"
#include "runtime/spawn_pool.h"
#include "serve/serve.h"
#include "trace/trace.h"

namespace lfi::serve {
namespace {

using runtime::ExitKind;
using runtime::Proc;
using runtime::ProcState;
using runtime::Runtime;
using runtime::RuntimeConfig;
using runtime::SpawnPool;

RuntimeConfig TestConfig() {
  RuntimeConfig cfg;
  cfg.core = arch::AppleM1LikeParams();
  return cfg;
}

// Request handler: spins a little (so chaos has retirements to inject
// into), writes a byte, exits 0.
const char* kServiceProg = R"(
    movz x19, #2000
  spin:
    sub x19, x19, #1
    cbnz x19, spin
    adrp x1, msg
    add x1, x1, :lo12:msg
    mov x0, #1
    mov x2, #2
    rtcall #1
    mov x0, #0
    rtcall #0
  .data
  msg:
    .asciz "ok"
)";

struct Pooled {
  Runtime rt;
  int seed_pid = -1;
  std::shared_ptr<const snapshot::Snapshot> snap;
  std::unique_ptr<SpawnPool> pool;

  explicit Pooled(const std::string& src = kServiceProg,
                  RuntimeConfig cfg = TestConfig())
      : rt(cfg) {
    auto elf = test::BuildElf(src);
    EXPECT_TRUE(elf.ok()) << (elf.ok() ? "" : elf.error());
    if (!elf.ok()) return;
    auto p = rt.Load({elf->data(), elf->size()});
    EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error());
    if (!p.ok()) return;
    seed_pid = *p;
    auto s = rt.CaptureSnapshot(seed_pid);
    EXPECT_TRUE(s.ok()) << (s.ok() ? "" : s.error());
    if (!s.ok()) return;
    snap = std::make_shared<const snapshot::Snapshot>(*std::move(s));
    // The template sandbox never serves; the pool owns instantiation.
    EXPECT_TRUE(rt.Kill(seed_pid, "template").ok());
    pool = std::make_unique<SpawnPool>(&rt, snap);
  }
};

// ---- SpawnPool edge paths ------------------------------------------------

TEST(SpawnPool, TakeOnEmptyPoolColdSpawns) {
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  auto pid = t.pool->Take();
  ASSERT_TRUE(pid.ok()) << pid.error();
  EXPECT_EQ(t.pool->warm_hits(), 0u);
  EXPECT_EQ(t.pool->cold_spawns(), 1u);
  EXPECT_EQ(t.pool->dead_parked(), 0u);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.rt.proc(*pid)->exit_kind, ExitKind::kExited);
  EXPECT_EQ(t.rt.proc(*pid)->out, "ok");
}

TEST(SpawnPool, PrewarmStopsAtSlotExhaustion) {
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  // Eat every slot but two, then ask for five warm sandboxes: the pool
  // must stop early and report only the two it actually created.
  while (t.rt.slots_in_use() < runtime::kMaxSlots - 2) {
    ASSERT_TRUE(t.rt.ReserveSlot().ok());
  }
  EXPECT_EQ(t.pool->Prewarm(5), 2);
  EXPECT_EQ(t.pool->warm(), 2u);
  // Fully exhausted: prewarm adds nothing, and Take's cold fallback
  // cannot spawn either.
  EXPECT_EQ(t.pool->Prewarm(5), 0);
  auto a = t.pool->Take();
  ASSERT_TRUE(a.ok());
  auto b = t.pool->Take();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(t.pool->warm_hits(), 2u);
  auto c = t.pool->Take();
  EXPECT_FALSE(c.ok());
}

TEST(SpawnPool, TakeAfterParkedKillPurgesAndServesLive) {
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  ASSERT_EQ(t.pool->Prewarm(2), 2);
  const int doomed = t.pool->warm_pids().front();
  ASSERT_TRUE(t.rt.Kill(doomed, "killed behind the pool's back").ok());
  // warm() still over-reports until the pool notices.
  EXPECT_EQ(t.pool->warm(), 2u);
  auto pid = t.pool->Take();
  ASSERT_TRUE(pid.ok()) << pid.error();
  EXPECT_NE(*pid, doomed);
  EXPECT_EQ(t.pool->warm_hits(), 1u);
  EXPECT_EQ(t.pool->cold_spawns(), 0u);
  EXPECT_EQ(t.pool->dead_parked(), 1u);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.rt.proc(*pid)->exit_kind, ExitKind::kExited);
  EXPECT_EQ(t.rt.proc(*pid)->exit_status, 0);
}

TEST(SpawnPool, PrewarmPurgesDeadParkedAndRefills) {
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  ASSERT_EQ(t.pool->Prewarm(3), 3);
  ASSERT_TRUE(t.rt.Kill(t.pool->warm_pids()[1], "mid-pool kill").ok());
  // Prewarm purges the corpse first, so topping up to 3 adds exactly one
  // and warm() counts only live parked sandboxes afterwards.
  EXPECT_EQ(t.pool->Prewarm(3), 1);
  EXPECT_EQ(t.pool->warm(), 3u);
  EXPECT_EQ(t.pool->dead_parked(), 1u);
  for (int k = 0; k < 3; ++k) {
    auto pid = t.pool->Take();
    ASSERT_TRUE(pid.ok());
  }
  EXPECT_EQ(t.pool->warm_hits(), 3u);
  EXPECT_EQ(t.pool->cold_spawns(), 0u);
}

TEST(SpawnPool, RecycleReparksSamePidAndServesAgain) {
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  ASSERT_EQ(t.pool->Prewarm(1), 1);
  auto pid = t.pool->Take();
  ASSERT_TRUE(pid.ok());
  t.rt.set_retain_on_exit(*pid, true);
  t.rt.RunUntilIdle();
  ASSERT_EQ(t.rt.proc(*pid)->state, ProcState::kZombie);
  EXPECT_EQ(t.rt.proc(*pid)->out, "ok");

  ASSERT_TRUE(t.pool->Recycle(*pid));
  EXPECT_EQ(t.pool->warm(), 1u);
  EXPECT_EQ(t.pool->recycles(), 1u);
  EXPECT_TRUE(t.rt.proc(*pid)->out.empty());  // rolled back

  auto again = t.pool->Take();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *pid);  // same pid, same slot
  EXPECT_EQ(t.pool->warm_hits(), 2u);
  t.rt.set_retain_on_exit(*pid, true);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.rt.proc(*pid)->state, ProcState::kZombie);
  EXPECT_EQ(t.rt.proc(*pid)->out, "ok");
}

TEST(SpawnPool, EvictKillsParkedSandboxes) {
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  ASSERT_EQ(t.pool->Prewarm(4), 4);
  const uint64_t slots_before = t.rt.slots_in_use();
  EXPECT_EQ(t.pool->Evict(2), 2);
  EXPECT_EQ(t.pool->warm(), 2u);
  EXPECT_EQ(t.pool->evictions(), 2u);
  EXPECT_EQ(t.rt.slots_in_use(), slots_before - 2);
}

// ---- Server behavior -----------------------------------------------------

ServeConfig SmallServeConfig(TrafficKind kind, uint64_t seed,
                             uint64_t requests) {
  ServeConfig cfg;
  cfg.traffic.kind = kind;
  cfg.traffic.seed = seed;
  cfg.traffic.requests = requests;
  cfg.traffic.rate_per_mcycle = 200;
  cfg.traffic.tenants = 4;
  cfg.tiers.resize(1);
  cfg.tiers[0].slo_cycles = 10000000;
  cfg.admission.max_queue_depth = 128;
  cfg.max_concurrency = 4;
  cfg.pool_min = 2;
  cfg.pool_max = 16;
  return cfg;
}

TEST(Server, PoissonRunIsDeterministicPerSeed) {
  std::string transcripts[2];
  for (int run = 0; run < 2; ++run) {
    Pooled t;
    ASSERT_NE(t.pool, nullptr);
    Server srv(&t.rt, SmallServeConfig(TrafficKind::kPoisson, 42, 60),
               t.pool.get());
    const ServeReport& rep = srv.Run();
    EXPECT_FALSE(rep.aborted);
    EXPECT_EQ(rep.completed, 60u);
    EXPECT_EQ(rep.failed, 0u);
    transcripts[run] = rep.Format();
  }
  EXPECT_EQ(transcripts[0], transcripts[1]);

  // A different seed is a genuinely different run.
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  Server srv(&t.rt, SmallServeConfig(TrafficKind::kPoisson, 43, 60),
             t.pool.get());
  EXPECT_NE(srv.Run().Format(), transcripts[0]);
}

TEST(Server, BurstShedsOnQueueDepth) {
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  ServeConfig cfg = SmallServeConfig(TrafficKind::kBursty, 7, 64);
  cfg.traffic.burst_size = 32;
  cfg.traffic.burst_period_cycles = 500000;
  cfg.admission.max_queue_depth = 4;
  cfg.max_concurrency = 1;
  Server srv(&t.rt, cfg, t.pool.get());
  const ServeReport& rep = srv.Run();
  EXPECT_FALSE(rep.aborted);
  EXPECT_EQ(rep.offered, 64u);
  EXPECT_GT(rep.shed_queue, 0u);
  EXPECT_GT(rep.completed, 0u);
  EXPECT_EQ(rep.offered,
            rep.completed + rep.failed + rep.shed_queue + rep.shed_deadline +
                rep.dispatch_failures);
}

TEST(Server, ShedsQueuedRequestsPastDeadline) {
  RuntimeConfig rcfg = TestConfig();
  rcfg.timeslice_insts = 1000;  // force multi-step in-flight handlers
  Pooled t(kServiceProg, rcfg);
  ASSERT_NE(t.pool, nullptr);
  ServeConfig cfg = SmallServeConfig(TrafficKind::kBursty, 11, 64);
  cfg.traffic.burst_size = 16;
  cfg.traffic.burst_period_cycles = 400000;
  cfg.admission.max_queue_depth = 64;
  cfg.max_concurrency = 1;
  cfg.slice_insts = 1000;
  cfg.tiers[0].slo_cycles = 3000;  // far less than a burst's service time
  Server srv(&t.rt, cfg, t.pool.get());
  const ServeReport& rep = srv.Run();
  EXPECT_FALSE(rep.aborted);
  EXPECT_GT(rep.shed_deadline, 0u);
  EXPECT_EQ(rep.offered,
            rep.completed + rep.failed + rep.shed_queue + rep.shed_deadline +
                rep.dispatch_failures);
}

TEST(Server, ClosedLoopServesEveryRequest) {
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  ServeConfig cfg = SmallServeConfig(TrafficKind::kClosed, 5, 40);
  cfg.traffic.closed_clients = 4;
  cfg.traffic.think_cycles = 5000;
  Server srv(&t.rt, cfg, t.pool.get());
  const ServeReport& rep = srv.Run();
  EXPECT_FALSE(rep.aborted);
  EXPECT_EQ(rep.offered, 40u);
  // Closed-loop never overruns the server: nothing is shed.
  EXPECT_EQ(rep.completed, 40u);
  EXPECT_EQ(rep.shed_queue, 0u);
  // Per-tenant accounting covers every request (clients map to tenants).
  uint64_t tenant_total = 0;
  for (const auto& [tenant, s] : rep.tenants) tenant_total += s.offered;
  EXPECT_EQ(tenant_total, 40u);
}

TEST(Server, WarmPoolBeatsColdLoadPerRequest) {
  const uint64_t kSeed = 99, kRequests = 80;
  auto config = [&] {
    ServeConfig cfg = SmallServeConfig(TrafficKind::kPoisson, kSeed,
                                       kRequests);
    cfg.traffic.rate_per_mcycle = 2000;  // saturating offered load
    cfg.admission.shed_on_deadline = false;
    return cfg;
  };

  Pooled warm;
  ASSERT_NE(warm.pool, nullptr);
  Server warm_srv(&warm.rt, config(), warm.pool.get());
  const ServeReport warm_rep = warm_srv.Run();
  ASSERT_FALSE(warm_rep.aborted);
  EXPECT_EQ(warm_rep.completed, kRequests);
  EXPECT_GT(warm_rep.warm_hits + warm_rep.cold_spawns, 0u);

  Runtime cold_rt{TestConfig()};
  auto elf = test::BuildElf(kServiceProg);
  ASSERT_TRUE(elf.ok());
  auto image = elf::Read({elf->data(), elf->size()});
  ASSERT_TRUE(image.ok());
  Server cold_srv(&cold_rt, config(), &*image);
  const ServeReport cold_rep = cold_srv.Run();
  ASSERT_FALSE(cold_rep.aborted);
  EXPECT_EQ(cold_rep.completed, kRequests);

  // Same offered load, same handler: serving from the warm pool must be
  // decisively faster than paying an ELF load per request.
  EXPECT_GT(warm_rep.ThroughputPerMcycle(),
            2.0 * cold_rep.ThroughputPerMcycle())
      << "warm=" << warm_rep.ThroughputPerMcycle()
      << " cold=" << cold_rep.ThroughputPerMcycle();
}

TEST(Server, StormChaosLeavesBystanderTenantsClean) {
  std::string transcripts[2];
  for (int run = 0; run < 2; ++run) {
    Pooled t;
    ASSERT_NE(t.pool, nullptr);
    trace::TraceSink sink;
    t.rt.set_trace_sink(&sink);
    chaos::ChaosEngine storm(1234, chaos::ProfileByName("storm"));
    t.rt.set_chaos(&storm);
    // Pin the victim set immediately (pid 0 never runs) so no early pid
    // is auto-selected before the first tier-0 dispatch marks one.
    storm.MarkVictim(0);

    ServeConfig cfg = SmallServeConfig(TrafficKind::kPoisson, 77, 80);
    // One request per sandbox: a pid marked as a victim for a tier-0
    // request must never be reused for a bystander tenant.
    cfg.recycle_sandboxes = false;
    cfg.tiers.resize(2);
    // Tier 0 (victim tenants): restart on fault, tiny backoff so the
    // shared clock is not stalled on their behalf.
    cfg.tiers[0].name = "victim";
    cfg.tiers[0].policy.on_fault = runtime::FaultAction::kRestart;
    cfg.tiers[0].policy.restart_budget = 3;
    cfg.tiers[0].policy.restart_backoff_base_cycles = 100;
    cfg.tiers[0].slo_cycles = 10000000;
    cfg.tiers[1].name = "bystander";
    cfg.tiers[1].slo_cycles = 10000000;
    // Tenants 0 and 2 land in tier 0; only their sandboxes are victims.
    cfg.on_dispatch = [&](int pid, const Request& r) {
      if (r.tier == 0) storm.MarkVictim(pid);
    };
    Server srv(&t.rt, cfg, t.pool.get());
    const ServeReport& rep = srv.Run();
    EXPECT_FALSE(rep.aborted);

    // The storm actually hit somebody.
    uint64_t injections = 0;
    for (const auto& [pid, m] : sink.all_metrics()) {
      injections += m.Get(trace::Counter::kChaosInjections);
    }
    EXPECT_GT(injections, 0u);

    // Bystander tenants (odd tenants -> tier 1) never fail and never
    // miss their SLO, storm or not.
    for (const auto& [tenant, s] : rep.tenants) {
      if (tenant % 2 == 1) {
        EXPECT_EQ(s.failed, 0u) << "tenant " << tenant;
        EXPECT_EQ(s.slo_violations, 0u) << "tenant " << tenant;
        EXPECT_GT(s.completed, 0u) << "tenant " << tenant;
      }
    }
    transcripts[run] = rep.Format();
    t.rt.set_trace_sink(nullptr);
  }
  // Storm-while-serving replays byte-identically for the same seeds.
  EXPECT_EQ(transcripts[0], transcripts[1]);
}

// ---- Deadline/SLO boundary rules (shared helpers) --------------------------

TEST(DeadlineBoundary, ExpiryAndViolationAreInclusiveAtTheEdge) {
  // A request is late the moment `now` reaches its deadline...
  EXPECT_TRUE(DeadlineExpired(1000, 1000));
  EXPECT_FALSE(DeadlineExpired(999, 1000));
  EXPECT_TRUE(DeadlineExpired(1001, 1000));
  // ...and a completion at exactly the SLO is a violation. Historically
  // shedding used `now > deadline` while accounting used `latency > slo`,
  // so a request landing exactly on the edge was counted in-SLO.
  EXPECT_TRUE(SloViolated(500, 500));
  EXPECT_FALSE(SloViolated(499, 500));
  EXPECT_TRUE(SloViolated(501, 500));
}

TEST(DeadlineBoundary, CompletionAtExactSloCountsAsViolation) {
  // Learn the handler's deterministic latency, then pin the SLO exactly
  // on it: the boundary must count as a violation; one cycle of headroom
  // must not.
  auto run_with_slo = [](uint64_t slo) {
    Pooled t;
    EXPECT_NE(t.pool, nullptr);
    ServeConfig cfg = SmallServeConfig(TrafficKind::kClosed, 3, 1);
    cfg.traffic.closed_clients = 1;
    cfg.tiers[0].slo_cycles = slo;
    cfg.admission.shed_on_deadline = false;  // judge at completion only
    Server srv(&t.rt, cfg, t.pool.get());
    return srv.Run();
  };
  const ServeReport probe = run_with_slo(10000000);
  ASSERT_EQ(probe.completed, 1u);
  ASSERT_EQ(probe.slo_violations, 0u);
  const uint64_t latency = probe.latencies[0];
  ASSERT_GT(latency, 0u);
  EXPECT_EQ(run_with_slo(latency).slo_violations, 1u);
  EXPECT_EQ(run_with_slo(latency + 1).slo_violations, 0u);
}

// ---- Config validation -----------------------------------------------------

TEST(ValidateConfig, AcceptsDefaultsAndRejectsDegenerateSettings) {
  std::string err;
  ServeConfig ok = SmallServeConfig(TrafficKind::kPoisson, 1, 10);
  EXPECT_TRUE(ValidateServeConfig(ok, &err)) << err;

  ServeConfig cfg = ok;
  cfg.admission.max_queue_depth = 0;
  EXPECT_FALSE(ValidateServeConfig(cfg, &err));
  EXPECT_NE(err.find("max_queue_depth"), std::string::npos) << err;

  cfg = ok;
  cfg.max_concurrency = 0;
  EXPECT_FALSE(ValidateServeConfig(cfg, &err));

  cfg = ok;
  cfg.tiers[0].slo_cycles = 0;  // retries would have no deadline to honor
  cfg.retry.budget = 2;
  EXPECT_FALSE(ValidateServeConfig(cfg, &err));
  EXPECT_NE(err.find("slo_cycles"), std::string::npos) << err;

  cfg = ok;
  cfg.default_quota.max_queued = cfg.admission.max_queue_depth + 1;
  EXPECT_FALSE(ValidateServeConfig(cfg, &err));
  EXPECT_NE(err.find("exceeds"), std::string::npos) << err;

  cfg = ok;
  cfg.quotas[2].weight = 0;
  EXPECT_FALSE(ValidateServeConfig(cfg, &err));

  cfg = ok;
  cfg.traffic.tenant_weights = {1, 2};  // 4 tenants
  EXPECT_FALSE(ValidateServeConfig(cfg, &err));

  cfg = ok;
  cfg.retry.budget = 1;
  cfg.retry.backoff_base_cycles = 100;
  cfg.retry.backoff_cap_cycles = 10;  // base exceeds cap
  EXPECT_FALSE(ValidateServeConfig(cfg, &err));

  cfg = ok;
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.open_cycles = 0;
  EXPECT_FALSE(ValidateServeConfig(cfg, &err));

  cfg = ok;
  cfg.degrade.enabled = true;
  cfg.degrade.shed_tier_depth = 50;
  cfg.degrade.no_retry_depth = 50;  // not strictly increasing
  cfg.degrade.fast_fail_depth = 60;
  EXPECT_FALSE(ValidateServeConfig(cfg, &err));
  EXPECT_NE(err.find("increasing"), std::string::npos) << err;
}

// ---- Per-tenant quotas and fair-share dispatch -----------------------------

TEST(Server, TenantQuotaShedsBeyondQueuedCap) {
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  ServeConfig cfg = SmallServeConfig(TrafficKind::kBursty, 9, 32);
  cfg.traffic.tenants = 1;
  cfg.traffic.burst_size = 16;
  cfg.traffic.burst_period_cycles = 500000;
  cfg.max_concurrency = 1;
  cfg.default_quota.max_queued = 2;
  Server srv(&t.rt, cfg, t.pool.get());
  const ServeReport& rep = srv.Run();
  EXPECT_FALSE(rep.aborted);
  EXPECT_GT(rep.shed_quota, 0u);
  EXPECT_EQ(rep.shed_queue, 0u);  // the tenant cap fires first
  ASSERT_TRUE(rep.tenants.count(0));
  EXPECT_EQ(rep.tenants.at(0).shed_quota, rep.shed_quota);
  EXPECT_EQ(rep.offered, rep.completed + rep.failed + rep.shed_queue +
                             rep.shed_deadline + rep.shed_quota +
                             rep.dispatch_failures);
}

TEST(Server, FloodingTenantCannotPushBystanderPastSlo) {
  // Tenant 0 floods at 10x the share of each bystander while capped by a
  // per-tenant quota; deficit-round-robin dispatch must keep tenants 1-3
  // inside their SLO with nothing shed.
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  ServeConfig cfg = SmallServeConfig(TrafficKind::kPoisson, 21, 260);
  cfg.traffic.rate_per_mcycle = 1500;  // saturating in aggregate
  cfg.traffic.tenant_weights = {30, 3, 3, 3};  // 10x flood
  cfg.quotas[0].max_queued = 8;  // quota the flood rides against
  cfg.tiers[0].slo_cycles = 2000000;
  Server srv(&t.rt, cfg, t.pool.get());
  const ServeReport& rep = srv.Run();
  EXPECT_FALSE(rep.aborted);
  ASSERT_TRUE(rep.tenants.count(0));
  const TenantStats& flood = rep.tenants.at(0);
  EXPECT_GT(flood.offered, 100u);     // the flood really was 10x
  EXPECT_GT(flood.shed_quota, 0u);    // and the quota really bit
  for (const auto& [tenant, s] : rep.tenants) {
    if (tenant == 0) continue;
    EXPECT_GT(s.completed, 0u) << "tenant " << tenant;
    EXPECT_EQ(s.shed, 0u) << "tenant " << tenant;
    EXPECT_EQ(s.slo_violations, 0u)
        << "tenant " << tenant << " p99="
        << PercentileOf(s.latencies, 99);
  }
}

// ---- Deadline-aware retry --------------------------------------------------

// Handler that always exits nonzero: every attempt fails, so retries
// burn the whole budget before the request is declared failed.
const char* kFailingProg = R"(
    movz x19, #200
  spin:
    sub x19, x19, #1
    cbnz x19, spin
    mov x0, #1
    rtcall #0
)";

TEST(Server, RetryBurnsBudgetThenFails) {
  Pooled t(kFailingProg);
  ASSERT_NE(t.pool, nullptr);
  ServeConfig cfg = SmallServeConfig(TrafficKind::kPoisson, 13, 10);
  cfg.traffic.tenants = 1;
  cfg.traffic.rate_per_mcycle = 50;
  cfg.retry.budget = 2;
  cfg.retry.backoff_base_cycles = 1000;
  cfg.retry.backoff_cap_cycles = 8000;
  Server srv(&t.rt, cfg, t.pool.get());
  const ServeReport& rep = srv.Run();
  EXPECT_FALSE(rep.aborted);
  EXPECT_EQ(rep.completed, 0u);
  EXPECT_EQ(rep.failed, 10u);           // every request eventually fails...
  EXPECT_EQ(rep.retried, 20u);          // ...after its full retry budget
  ASSERT_TRUE(rep.tenants.count(0));
  EXPECT_EQ(rep.tenants.at(0).retried, 20u);
  // Retries are attempts, not offered requests: the outcome identity
  // still balances without them.
  EXPECT_EQ(rep.offered, rep.completed + rep.failed + rep.shed_queue +
                             rep.shed_deadline + rep.dispatch_failures);
}

TEST(Server, RetryGivesUpWhenBackoffWouldMissDeadline) {
  Pooled t(kFailingProg);
  ASSERT_NE(t.pool, nullptr);
  ServeConfig cfg = SmallServeConfig(TrafficKind::kPoisson, 13, 10);
  cfg.traffic.tenants = 1;
  cfg.traffic.rate_per_mcycle = 50;
  cfg.retry.budget = 3;
  // Backoff alone overshoots the whole SLO window: no retry is ever
  // worth scheduling, deadline-aware give-up must see that up front.
  cfg.tiers[0].slo_cycles = 4000;
  cfg.retry.backoff_base_cycles = 1000000;
  cfg.retry.backoff_cap_cycles = 2000000;
  cfg.admission.shed_on_deadline = false;
  Server srv(&t.rt, cfg, t.pool.get());
  const ServeReport& rep = srv.Run();
  EXPECT_FALSE(rep.aborted);
  EXPECT_EQ(rep.retried, 0u);
  EXPECT_EQ(rep.failed, 10u);
}

// ---- Circuit breaker -------------------------------------------------------

TEST(Server, BreakerOpensAtThresholdAndFastFailsArrivals) {
  Pooled t(kFailingProg);
  ASSERT_NE(t.pool, nullptr);
  ServeConfig cfg = SmallServeConfig(TrafficKind::kPoisson, 31, 10);
  cfg.traffic.tenants = 1;
  cfg.traffic.rate_per_mcycle = 50;  // one request in flight at a time
  cfg.max_concurrency = 1;
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.open_cycles = 1000000000;  // never cools down in this run
  Server srv(&t.rt, cfg, t.pool.get());
  const ServeReport& rep = srv.Run();
  EXPECT_FALSE(rep.aborted);
  // Exactly `threshold` failures burn sandboxes; every later arrival is
  // fast-failed at admission without touching the pool.
  EXPECT_EQ(rep.failed, 3u);
  EXPECT_EQ(rep.shed_breaker, 7u);
  EXPECT_EQ(rep.breaker_trips, 1u);
  ASSERT_TRUE(rep.tenants.count(0));
  EXPECT_EQ(rep.tenants.at(0).breaker_state, BreakerState::kOpen);
  EXPECT_EQ(rep.tenants.at(0).breaker_trips, 1u);
}

TEST(Server, BreakerHalfOpenProbeRecoversAfterFaultsStop) {
  // Failures are induced from outside (the dispatched sandbox is killed
  // for the first three requests), then stop: the breaker must open at
  // the threshold, fast-fail during the cool-down, admit a half-open
  // probe, and close after two probe successes.
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  ServeConfig cfg = SmallServeConfig(TrafficKind::kPoisson, 57, 14);
  cfg.traffic.tenants = 1;
  cfg.traffic.rate_per_mcycle = 50;
  cfg.max_concurrency = 1;
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.open_cycles = 40000;
  cfg.breaker.close_successes = 2;
  int kills = 0;
  cfg.on_dispatch = [&](int pid, const Request&) {
    if (kills < 3) {
      ++kills;
      (void)t.rt.Kill(pid, "induced failure");
    }
  };
  Server srv(&t.rt, cfg, t.pool.get());
  const ServeReport& rep = srv.Run();
  EXPECT_FALSE(rep.aborted);
  EXPECT_EQ(rep.failed, 3u);
  EXPECT_EQ(rep.breaker_trips, 1u);
  EXPECT_EQ(rep.breaker_recoveries, 1u);
  EXPECT_GT(rep.shed_breaker, 0u);      // something arrived while open
  EXPECT_GT(rep.completed, 0u);         // probes and later traffic served
  ASSERT_TRUE(rep.tenants.count(0));
  EXPECT_EQ(rep.tenants.at(0).breaker_state, BreakerState::kClosed);
}

// ---- Graceful-degradation ladder -------------------------------------------

TEST(Server, OverloadClimbsDegradationLadderAndShedsLowTier) {
  RuntimeConfig rcfg = TestConfig();
  rcfg.timeslice_insts = 1000;
  Pooled t(kServiceProg, rcfg);
  ASSERT_NE(t.pool, nullptr);
  ServeConfig cfg = SmallServeConfig(TrafficKind::kBursty, 17, 192);
  // Bursts land faster than the backlog drains, so later bursts arrive
  // while the ladder is already elevated (shedding needs arrivals to hit
  // an elevated level, and the EWMA lags a lone burst).
  cfg.traffic.burst_size = 48;
  cfg.traffic.burst_period_cycles = 40000;
  cfg.max_concurrency = 1;
  cfg.slice_insts = 1000;
  cfg.admission.max_queue_depth = 256;
  cfg.admission.shed_on_deadline = false;
  cfg.tiers.resize(2);
  cfg.tiers[0].slo_cycles = 100000000;
  cfg.tiers[1].slo_cycles = 100000000;  // lowest-QoS tier, shed first
  cfg.degrade.enabled = true;
  cfg.degrade.ewma_shift = 1;  // fast-reacting EWMA for a short test
  cfg.degrade.shed_tier_depth = 8;
  cfg.degrade.no_retry_depth = 24;
  cfg.degrade.fast_fail_depth = 48;
  Server srv(&t.rt, cfg, t.pool.get());
  const ServeReport& rep = srv.Run();
  EXPECT_FALSE(rep.aborted);
  EXPECT_GE(rep.max_degrade_level, 2u);
  EXPECT_GT(rep.degrade_transitions, 1u);  // up and back down
  EXPECT_GT(rep.shed_degrade, 0u);
  // The ladder recovered once the backlog drained.
  EXPECT_EQ(srv.degrade_level(), 0u);
  EXPECT_EQ(rep.offered, rep.completed + rep.failed + rep.shed_queue +
                             rep.shed_deadline + rep.shed_quota +
                             rep.shed_degrade + rep.dispatch_failures);
}

// ---- Tenant-scoped chaos with recycling ------------------------------------

TEST(Server, TenantScopedChaosIsSafeWithRecycling) {
  // Victimhood tracks the tenant *binding* (marked at dispatch, unmarked
  // at completion), so sandbox recycling can stay on: a pid that served
  // the storm tenant and was recycled must be injectable no longer when
  // it later serves a healthy tenant.
  std::string transcripts[2];
  for (int run = 0; run < 2; ++run) {
    Pooled t;
    ASSERT_NE(t.pool, nullptr);
    chaos::ChaosProfile profile;
    profile.cpu_faults = true;
    profile.min_fault_gap = 200;
    profile.max_fault_gap = 1000;  // well under the handler's ~2000 insts
    chaos::ChaosEngine storm(4321, profile);
    t.rt.set_chaos(&storm);

    ServeConfig cfg = SmallServeConfig(TrafficKind::kPoisson, 88, 80);
    cfg.tiers.resize(2);
    cfg.tiers[0].policy.on_fault = runtime::FaultAction::kKill;
    cfg.chaos = &storm;
    cfg.chaos_tenants = {0};
    Server srv(&t.rt, cfg, t.pool.get());
    const ServeReport& rep = srv.Run();
    EXPECT_FALSE(rep.aborted);
    ASSERT_TRUE(rep.tenants.count(0));
    EXPECT_GT(rep.tenants.at(0).injected_faults, 0u);
    for (const auto& [tenant, s] : rep.tenants) {
      if (tenant == 0) continue;
      EXPECT_EQ(s.failed, 0u) << "tenant " << tenant;
      EXPECT_EQ(s.faults, 0u) << "tenant " << tenant;
      EXPECT_EQ(s.slo_violations, 0u) << "tenant " << tenant;
      EXPECT_GT(s.completed, 0u) << "tenant " << tenant;
    }
    transcripts[run] = rep.Format();
    t.rt.set_chaos(nullptr);
  }
  EXPECT_EQ(transcripts[0], transcripts[1]);
}

}  // namespace
}  // namespace lfi::serve
