// Serving control-plane tests (src/serve/, docs/SERVING.md): SpawnPool
// edge paths (empty-pool cold spawn, slot-exhausted prewarm, parked pids
// killed behind the pool's back), recycle-and-repark, deterministic
// traffic replay, queue-depth and deadline shedding, the warm-vs-cold
// throughput gap, and storm chaos mid-serving leaving bystander tenants'
// SLOs intact.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "pipeline_util.h"
#include "runtime/layout.h"
#include "runtime/runtime.h"
#include "runtime/spawn_pool.h"
#include "serve/serve.h"
#include "trace/trace.h"

namespace lfi::serve {
namespace {

using runtime::ExitKind;
using runtime::Proc;
using runtime::ProcState;
using runtime::Runtime;
using runtime::RuntimeConfig;
using runtime::SpawnPool;

RuntimeConfig TestConfig() {
  RuntimeConfig cfg;
  cfg.core = arch::AppleM1LikeParams();
  return cfg;
}

// Request handler: spins a little (so chaos has retirements to inject
// into), writes a byte, exits 0.
const char* kServiceProg = R"(
    movz x19, #2000
  spin:
    sub x19, x19, #1
    cbnz x19, spin
    adrp x1, msg
    add x1, x1, :lo12:msg
    mov x0, #1
    mov x2, #2
    rtcall #1
    mov x0, #0
    rtcall #0
  .data
  msg:
    .asciz "ok"
)";

struct Pooled {
  Runtime rt;
  int seed_pid = -1;
  std::shared_ptr<const snapshot::Snapshot> snap;
  std::unique_ptr<SpawnPool> pool;

  explicit Pooled(const std::string& src = kServiceProg,
                  RuntimeConfig cfg = TestConfig())
      : rt(cfg) {
    auto elf = test::BuildElf(src);
    EXPECT_TRUE(elf.ok()) << (elf.ok() ? "" : elf.error());
    if (!elf.ok()) return;
    auto p = rt.Load({elf->data(), elf->size()});
    EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error());
    if (!p.ok()) return;
    seed_pid = *p;
    auto s = rt.CaptureSnapshot(seed_pid);
    EXPECT_TRUE(s.ok()) << (s.ok() ? "" : s.error());
    if (!s.ok()) return;
    snap = std::make_shared<const snapshot::Snapshot>(*std::move(s));
    // The template sandbox never serves; the pool owns instantiation.
    EXPECT_TRUE(rt.Kill(seed_pid, "template").ok());
    pool = std::make_unique<SpawnPool>(&rt, snap);
  }
};

// ---- SpawnPool edge paths ------------------------------------------------

TEST(SpawnPool, TakeOnEmptyPoolColdSpawns) {
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  auto pid = t.pool->Take();
  ASSERT_TRUE(pid.ok()) << pid.error();
  EXPECT_EQ(t.pool->warm_hits(), 0u);
  EXPECT_EQ(t.pool->cold_spawns(), 1u);
  EXPECT_EQ(t.pool->dead_parked(), 0u);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.rt.proc(*pid)->exit_kind, ExitKind::kExited);
  EXPECT_EQ(t.rt.proc(*pid)->out, "ok");
}

TEST(SpawnPool, PrewarmStopsAtSlotExhaustion) {
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  // Eat every slot but two, then ask for five warm sandboxes: the pool
  // must stop early and report only the two it actually created.
  while (t.rt.slots_in_use() < runtime::kMaxSlots - 2) {
    ASSERT_TRUE(t.rt.ReserveSlot().ok());
  }
  EXPECT_EQ(t.pool->Prewarm(5), 2);
  EXPECT_EQ(t.pool->warm(), 2u);
  // Fully exhausted: prewarm adds nothing, and Take's cold fallback
  // cannot spawn either.
  EXPECT_EQ(t.pool->Prewarm(5), 0);
  auto a = t.pool->Take();
  ASSERT_TRUE(a.ok());
  auto b = t.pool->Take();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(t.pool->warm_hits(), 2u);
  auto c = t.pool->Take();
  EXPECT_FALSE(c.ok());
}

TEST(SpawnPool, TakeAfterParkedKillPurgesAndServesLive) {
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  ASSERT_EQ(t.pool->Prewarm(2), 2);
  const int doomed = t.pool->warm_pids().front();
  ASSERT_TRUE(t.rt.Kill(doomed, "killed behind the pool's back").ok());
  // warm() still over-reports until the pool notices.
  EXPECT_EQ(t.pool->warm(), 2u);
  auto pid = t.pool->Take();
  ASSERT_TRUE(pid.ok()) << pid.error();
  EXPECT_NE(*pid, doomed);
  EXPECT_EQ(t.pool->warm_hits(), 1u);
  EXPECT_EQ(t.pool->cold_spawns(), 0u);
  EXPECT_EQ(t.pool->dead_parked(), 1u);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.rt.proc(*pid)->exit_kind, ExitKind::kExited);
  EXPECT_EQ(t.rt.proc(*pid)->exit_status, 0);
}

TEST(SpawnPool, PrewarmPurgesDeadParkedAndRefills) {
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  ASSERT_EQ(t.pool->Prewarm(3), 3);
  ASSERT_TRUE(t.rt.Kill(t.pool->warm_pids()[1], "mid-pool kill").ok());
  // Prewarm purges the corpse first, so topping up to 3 adds exactly one
  // and warm() counts only live parked sandboxes afterwards.
  EXPECT_EQ(t.pool->Prewarm(3), 1);
  EXPECT_EQ(t.pool->warm(), 3u);
  EXPECT_EQ(t.pool->dead_parked(), 1u);
  for (int k = 0; k < 3; ++k) {
    auto pid = t.pool->Take();
    ASSERT_TRUE(pid.ok());
  }
  EXPECT_EQ(t.pool->warm_hits(), 3u);
  EXPECT_EQ(t.pool->cold_spawns(), 0u);
}

TEST(SpawnPool, RecycleReparksSamePidAndServesAgain) {
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  ASSERT_EQ(t.pool->Prewarm(1), 1);
  auto pid = t.pool->Take();
  ASSERT_TRUE(pid.ok());
  t.rt.set_retain_on_exit(*pid, true);
  t.rt.RunUntilIdle();
  ASSERT_EQ(t.rt.proc(*pid)->state, ProcState::kZombie);
  EXPECT_EQ(t.rt.proc(*pid)->out, "ok");

  ASSERT_TRUE(t.pool->Recycle(*pid));
  EXPECT_EQ(t.pool->warm(), 1u);
  EXPECT_EQ(t.pool->recycles(), 1u);
  EXPECT_TRUE(t.rt.proc(*pid)->out.empty());  // rolled back

  auto again = t.pool->Take();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *pid);  // same pid, same slot
  EXPECT_EQ(t.pool->warm_hits(), 2u);
  t.rt.set_retain_on_exit(*pid, true);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.rt.proc(*pid)->state, ProcState::kZombie);
  EXPECT_EQ(t.rt.proc(*pid)->out, "ok");
}

TEST(SpawnPool, EvictKillsParkedSandboxes) {
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  ASSERT_EQ(t.pool->Prewarm(4), 4);
  const uint64_t slots_before = t.rt.slots_in_use();
  EXPECT_EQ(t.pool->Evict(2), 2);
  EXPECT_EQ(t.pool->warm(), 2u);
  EXPECT_EQ(t.pool->evictions(), 2u);
  EXPECT_EQ(t.rt.slots_in_use(), slots_before - 2);
}

// ---- Server behavior -----------------------------------------------------

ServeConfig SmallServeConfig(TrafficKind kind, uint64_t seed,
                             uint64_t requests) {
  ServeConfig cfg;
  cfg.traffic.kind = kind;
  cfg.traffic.seed = seed;
  cfg.traffic.requests = requests;
  cfg.traffic.rate_per_mcycle = 200;
  cfg.traffic.tenants = 4;
  cfg.tiers.resize(1);
  cfg.tiers[0].slo_cycles = 10000000;
  cfg.admission.max_queue_depth = 128;
  cfg.max_concurrency = 4;
  cfg.pool_min = 2;
  cfg.pool_max = 16;
  return cfg;
}

TEST(Server, PoissonRunIsDeterministicPerSeed) {
  std::string transcripts[2];
  for (int run = 0; run < 2; ++run) {
    Pooled t;
    ASSERT_NE(t.pool, nullptr);
    Server srv(&t.rt, SmallServeConfig(TrafficKind::kPoisson, 42, 60),
               t.pool.get());
    const ServeReport& rep = srv.Run();
    EXPECT_FALSE(rep.aborted);
    EXPECT_EQ(rep.completed, 60u);
    EXPECT_EQ(rep.failed, 0u);
    transcripts[run] = rep.Format();
  }
  EXPECT_EQ(transcripts[0], transcripts[1]);

  // A different seed is a genuinely different run.
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  Server srv(&t.rt, SmallServeConfig(TrafficKind::kPoisson, 43, 60),
             t.pool.get());
  EXPECT_NE(srv.Run().Format(), transcripts[0]);
}

TEST(Server, BurstShedsOnQueueDepth) {
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  ServeConfig cfg = SmallServeConfig(TrafficKind::kBursty, 7, 64);
  cfg.traffic.burst_size = 32;
  cfg.traffic.burst_period_cycles = 500000;
  cfg.admission.max_queue_depth = 4;
  cfg.max_concurrency = 1;
  Server srv(&t.rt, cfg, t.pool.get());
  const ServeReport& rep = srv.Run();
  EXPECT_FALSE(rep.aborted);
  EXPECT_EQ(rep.offered, 64u);
  EXPECT_GT(rep.shed_queue, 0u);
  EXPECT_GT(rep.completed, 0u);
  EXPECT_EQ(rep.offered,
            rep.completed + rep.failed + rep.shed_queue + rep.shed_deadline +
                rep.dispatch_failures);
}

TEST(Server, ShedsQueuedRequestsPastDeadline) {
  RuntimeConfig rcfg = TestConfig();
  rcfg.timeslice_insts = 1000;  // force multi-step in-flight handlers
  Pooled t(kServiceProg, rcfg);
  ASSERT_NE(t.pool, nullptr);
  ServeConfig cfg = SmallServeConfig(TrafficKind::kBursty, 11, 64);
  cfg.traffic.burst_size = 16;
  cfg.traffic.burst_period_cycles = 400000;
  cfg.admission.max_queue_depth = 64;
  cfg.max_concurrency = 1;
  cfg.slice_insts = 1000;
  cfg.tiers[0].slo_cycles = 3000;  // far less than a burst's service time
  Server srv(&t.rt, cfg, t.pool.get());
  const ServeReport& rep = srv.Run();
  EXPECT_FALSE(rep.aborted);
  EXPECT_GT(rep.shed_deadline, 0u);
  EXPECT_EQ(rep.offered,
            rep.completed + rep.failed + rep.shed_queue + rep.shed_deadline +
                rep.dispatch_failures);
}

TEST(Server, ClosedLoopServesEveryRequest) {
  Pooled t;
  ASSERT_NE(t.pool, nullptr);
  ServeConfig cfg = SmallServeConfig(TrafficKind::kClosed, 5, 40);
  cfg.traffic.closed_clients = 4;
  cfg.traffic.think_cycles = 5000;
  Server srv(&t.rt, cfg, t.pool.get());
  const ServeReport& rep = srv.Run();
  EXPECT_FALSE(rep.aborted);
  EXPECT_EQ(rep.offered, 40u);
  // Closed-loop never overruns the server: nothing is shed.
  EXPECT_EQ(rep.completed, 40u);
  EXPECT_EQ(rep.shed_queue, 0u);
  // Per-tenant accounting covers every request (clients map to tenants).
  uint64_t tenant_total = 0;
  for (const auto& [tenant, s] : rep.tenants) tenant_total += s.offered;
  EXPECT_EQ(tenant_total, 40u);
}

TEST(Server, WarmPoolBeatsColdLoadPerRequest) {
  const uint64_t kSeed = 99, kRequests = 80;
  auto config = [&] {
    ServeConfig cfg = SmallServeConfig(TrafficKind::kPoisson, kSeed,
                                       kRequests);
    cfg.traffic.rate_per_mcycle = 2000;  // saturating offered load
    cfg.admission.shed_on_deadline = false;
    return cfg;
  };

  Pooled warm;
  ASSERT_NE(warm.pool, nullptr);
  Server warm_srv(&warm.rt, config(), warm.pool.get());
  const ServeReport warm_rep = warm_srv.Run();
  ASSERT_FALSE(warm_rep.aborted);
  EXPECT_EQ(warm_rep.completed, kRequests);
  EXPECT_GT(warm_rep.warm_hits + warm_rep.cold_spawns, 0u);

  Runtime cold_rt{TestConfig()};
  auto elf = test::BuildElf(kServiceProg);
  ASSERT_TRUE(elf.ok());
  auto image = elf::Read({elf->data(), elf->size()});
  ASSERT_TRUE(image.ok());
  Server cold_srv(&cold_rt, config(), &*image);
  const ServeReport cold_rep = cold_srv.Run();
  ASSERT_FALSE(cold_rep.aborted);
  EXPECT_EQ(cold_rep.completed, kRequests);

  // Same offered load, same handler: serving from the warm pool must be
  // decisively faster than paying an ELF load per request.
  EXPECT_GT(warm_rep.ThroughputPerMcycle(),
            2.0 * cold_rep.ThroughputPerMcycle())
      << "warm=" << warm_rep.ThroughputPerMcycle()
      << " cold=" << cold_rep.ThroughputPerMcycle();
}

TEST(Server, StormChaosLeavesBystanderTenantsClean) {
  std::string transcripts[2];
  for (int run = 0; run < 2; ++run) {
    Pooled t;
    ASSERT_NE(t.pool, nullptr);
    trace::TraceSink sink;
    t.rt.set_trace_sink(&sink);
    chaos::ChaosEngine storm(1234, chaos::ProfileByName("storm"));
    t.rt.set_chaos(&storm);
    // Pin the victim set immediately (pid 0 never runs) so no early pid
    // is auto-selected before the first tier-0 dispatch marks one.
    storm.MarkVictim(0);

    ServeConfig cfg = SmallServeConfig(TrafficKind::kPoisson, 77, 80);
    // One request per sandbox: a pid marked as a victim for a tier-0
    // request must never be reused for a bystander tenant.
    cfg.recycle_sandboxes = false;
    cfg.tiers.resize(2);
    // Tier 0 (victim tenants): restart on fault, tiny backoff so the
    // shared clock is not stalled on their behalf.
    cfg.tiers[0].name = "victim";
    cfg.tiers[0].policy.on_fault = runtime::FaultAction::kRestart;
    cfg.tiers[0].policy.restart_budget = 3;
    cfg.tiers[0].policy.restart_backoff_base_cycles = 100;
    cfg.tiers[0].slo_cycles = 10000000;
    cfg.tiers[1].name = "bystander";
    cfg.tiers[1].slo_cycles = 10000000;
    // Tenants 0 and 2 land in tier 0; only their sandboxes are victims.
    cfg.on_dispatch = [&](int pid, const Request& r) {
      if (r.tier == 0) storm.MarkVictim(pid);
    };
    Server srv(&t.rt, cfg, t.pool.get());
    const ServeReport& rep = srv.Run();
    EXPECT_FALSE(rep.aborted);

    // The storm actually hit somebody.
    uint64_t injections = 0;
    for (const auto& [pid, m] : sink.all_metrics()) {
      injections += m.Get(trace::Counter::kChaosInjections);
    }
    EXPECT_GT(injections, 0u);

    // Bystander tenants (odd tenants -> tier 1) never fail and never
    // miss their SLO, storm or not.
    for (const auto& [tenant, s] : rep.tenants) {
      if (tenant % 2 == 1) {
        EXPECT_EQ(s.failed, 0u) << "tenant " << tenant;
        EXPECT_EQ(s.slo_violations, 0u) << "tenant " << tenant;
        EXPECT_GT(s.completed, 0u) << "tenant " << tenant;
      }
    }
    transcripts[run] = rep.Format();
    t.rt.set_trace_sink(nullptr);
  }
  // Storm-while-serving replays byte-identically for the same seeds.
  EXPECT_EQ(transcripts[0], transcripts[1]);
}

}  // namespace
}  // namespace lfi::serve
