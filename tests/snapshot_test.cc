// Snapshot subsystem tests (src/snapshot/, docs/SNAPSHOTS.md): the
// versioned on-disk format round-trips every field and rejects damaged or
// foreign files with distinct errors; capture is copy-on-write (the image
// stays frozen while the live sandbox keeps running); restore touches only
// diverged pages and is bit-exact against a fresh ELF load; fd state
// (open files, pipes with buffered bytes) survives capture/spawn; and the
// warm spawn pool hands out parked sandboxes before cold-spawning.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "pipeline_util.h"
#include "runtime/runtime.h"
#include "runtime/spawn_pool.h"
#include "snapshot/snapshot.h"

namespace lfi::snapshot {
namespace {

using runtime::ExitKind;
using runtime::FileDesc;
using runtime::Pipe;
using runtime::Proc;
using runtime::ProcState;
using runtime::Runtime;
using runtime::RuntimeConfig;

constexpr uint64_t kPage = emu::kPageSize;

RuntimeConfig TestConfig() {
  RuntimeConfig cfg;
  cfg.core = arch::AppleM1LikeParams();
  return cfg;
}

// ---- Format helpers ------------------------------------------------------

uint64_t Fnv1a(std::span<const uint8_t> bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

// Recomputes the FNV-1a trailer after a test mutates the payload, so the
// mutation reaches the parser instead of tripping the checksum gate.
void Reseal(std::vector<uint8_t>* bytes) {
  ASSERT_GE(bytes->size(), 8u);
  const uint64_t sum = Fnv1a({bytes->data(), bytes->size() - 8});
  std::memcpy(bytes->data() + bytes->size() - 8, &sum, 8);
}

// A snapshot with every field populated, for round-trip comparisons.
Snapshot FullyPopulatedSnapshot() {
  Snapshot s;
  for (int i = 0; i < 31; ++i) s.cpu.x[i] = 0x1111111111111111ull * i + 7;
  s.cpu.sp = 0xfffff000;
  s.cpu.pc = 0x140000;
  s.cpu.n = true;
  s.cpu.z = false;
  s.cpu.c = true;
  s.cpu.v = true;
  for (size_t v = 0; v < std::size(s.cpu.vr); ++v) {
    s.cpu.vr[v].lo = v * 3 + 1;
    s.cpu.vr[v].hi = ~uint64_t{v};
  }
  s.cpu.excl_valid = true;
  s.cpu.excl_addr = 0x200040;
  s.brk_start = 0x300000;
  s.brk = 0x304000;
  s.brk_mapped = 0x308000;
  s.mmap_cursor = 0xf0000000;
  s.mmap_bytes = 2 * kPage;
  s.sig_handlers[11] = 0x145678;
  s.sig_in_handler = true;
  s.sig_cookie = 0xc00c1e;
  s.sig_frame_addr = 0xffff0000;
  s.sig_delivered = 3;
  s.mappings[0] = {kPage, emu::kPermRead};
  s.mappings[0x140000] = {kPage, emu::kPermRead | emu::kPermExec};

  PageRec zero;
  zero.offset = 0;
  zero.perms = emu::kPermRead;
  zero.data = std::make_shared<emu::AddressSpace::PageData>();
  zero.data->fill(0);
  s.pages.push_back(zero);

  PageRec pattern;
  pattern.offset = 0x140000;
  pattern.perms = emu::kPermRead | emu::kPermExec;
  pattern.data = std::make_shared<emu::AddressSpace::PageData>();
  for (size_t i = 0; i < pattern.data->size(); ++i) {
    (*pattern.data)[i] = static_cast<uint8_t>(i * 37 + 5);
  }
  s.pages.push_back(pattern);

  FdRec f;
  f.kind = FdRec::Kind::kFile;
  f.flags = 2;
  f.offset = 42;
  f.path = "/etc/data.txt";
  s.fds.push_back(f);
  FdRec pr;
  pr.kind = FdRec::Kind::kPipeRead;
  pr.pipe_id = 1;
  pr.pipe_buf = {9, 8, 7, 6};
  s.fds.push_back(pr);
  FdRec pw;
  pw.kind = FdRec::Kind::kPipeWrite;
  pw.pipe_id = 1;
  s.fds.push_back(pw);
  return s;
}

// ---- On-disk format ------------------------------------------------------

TEST(SnapshotFormat, SerializeRoundTripPreservesAllFields) {
  const Snapshot s = FullyPopulatedSnapshot();
  const std::vector<uint8_t> bytes = Serialize(s);
  auto back = Deserialize({bytes.data(), bytes.size()});
  ASSERT_TRUE(back.ok()) << back.error();

  EXPECT_TRUE(back->cpu == s.cpu);
  EXPECT_EQ(back->brk_start, s.brk_start);
  EXPECT_EQ(back->brk, s.brk);
  EXPECT_EQ(back->brk_mapped, s.brk_mapped);
  EXPECT_EQ(back->mmap_cursor, s.mmap_cursor);
  EXPECT_EQ(back->mmap_bytes, s.mmap_bytes);
  EXPECT_EQ(back->sig_handlers, s.sig_handlers);
  EXPECT_EQ(back->sig_in_handler, s.sig_in_handler);
  EXPECT_EQ(back->sig_cookie, s.sig_cookie);
  EXPECT_EQ(back->sig_frame_addr, s.sig_frame_addr);
  EXPECT_EQ(back->sig_delivered, s.sig_delivered);
  EXPECT_EQ(back->mappings, s.mappings);

  ASSERT_EQ(back->pages.size(), s.pages.size());
  for (size_t i = 0; i < s.pages.size(); ++i) {
    EXPECT_EQ(back->pages[i].offset, s.pages[i].offset);
    EXPECT_EQ(back->pages[i].perms, s.pages[i].perms);
    ASSERT_NE(back->pages[i].data, nullptr);
    EXPECT_EQ(*back->pages[i].data, *s.pages[i].data);
  }

  ASSERT_EQ(back->fds.size(), s.fds.size());
  for (size_t i = 0; i < s.fds.size(); ++i) {
    EXPECT_EQ(back->fds[i].kind, s.fds[i].kind);
    EXPECT_EQ(back->fds[i].flags, s.fds[i].flags);
    EXPECT_EQ(back->fds[i].offset, s.fds[i].offset);
    EXPECT_EQ(back->fds[i].path, s.fds[i].path);
    EXPECT_EQ(back->fds[i].pipe_id, s.fds[i].pipe_id);
    EXPECT_EQ(back->fds[i].pipe_buf, s.fds[i].pipe_buf);
  }
}

TEST(SnapshotFormat, AllZeroPagesAreElided) {
  Snapshot zero = FullyPopulatedSnapshot();
  Snapshot dense = FullyPopulatedSnapshot();
  (*dense.pages[0].data)[123] = 0xab;  // the zero page, made non-zero
  const size_t elided = Serialize(zero).size();
  const size_t full = Serialize(dense).size();
  EXPECT_EQ(full - elided, kPage);
}

TEST(SnapshotFormat, RejectsBadMagic) {
  std::vector<uint8_t> bytes = Serialize(FullyPopulatedSnapshot());
  bytes[0] ^= 0xff;
  const auto r = Deserialize({bytes.data(), bytes.size()});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("bad magic"), std::string::npos) << r.error();
}

TEST(SnapshotFormat, RejectsCorruption) {
  std::vector<uint8_t> bytes = Serialize(FullyPopulatedSnapshot());
  bytes[bytes.size() / 2] ^= 0x01;  // one flipped bit mid-payload
  const auto r = Deserialize({bytes.data(), bytes.size()});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("checksum mismatch"), std::string::npos)
      << r.error();
}

TEST(SnapshotFormat, RejectsTruncation) {
  // A file chopped below the fixed header is reported as truncated.
  std::vector<uint8_t> stub(10, 0);
  const auto r = Deserialize({stub.data(), stub.size()});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("truncated"), std::string::npos) << r.error();

  // A payload that ends mid-record (resealed, so the checksum passes and
  // the parser itself hits the end) is also truncation, not corruption.
  std::vector<uint8_t> bytes = Serialize(FullyPopulatedSnapshot());
  bytes.erase(bytes.end() - 9);  // drop the last payload byte
  Reseal(&bytes);
  const auto r2 = Deserialize({bytes.data(), bytes.size()});
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.error().find("truncated"), std::string::npos) << r2.error();
}

TEST(SnapshotFormat, RejectsUnsupportedVersion) {
  std::vector<uint8_t> bytes = Serialize(FullyPopulatedSnapshot());
  const uint32_t future = kFormatVersion + 9;
  std::memcpy(bytes.data() + 8, &future, 4);  // version follows the magic
  Reseal(&bytes);
  const auto r = Deserialize({bytes.data(), bytes.size()});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("unsupported version 10"), std::string::npos)
      << r.error();
}

TEST(SnapshotFormat, RejectsForeignPageSize) {
  std::vector<uint8_t> bytes = Serialize(FullyPopulatedSnapshot());
  const uint64_t alien = 4096;
  std::memcpy(bytes.data() + 12, &alien, 8);  // page_sz follows the version
  Reseal(&bytes);
  const auto r = Deserialize({bytes.data(), bytes.size()});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("page size 4096"), std::string::npos) << r.error();
}

TEST(SnapshotFormat, RejectsTrailingBytes) {
  std::vector<uint8_t> bytes = Serialize(FullyPopulatedSnapshot());
  bytes.insert(bytes.end() - 8, 0x00);  // junk between fd table and trailer
  Reseal(&bytes);
  const auto r = Deserialize({bytes.data(), bytes.size()});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("trailing bytes"), std::string::npos) << r.error();
}

TEST(SnapshotFormat, WriteFileReadFileRoundTrip) {
  const Snapshot s = FullyPopulatedSnapshot();
  const std::string path = testing::TempDir() + "/lfi_snapshot_test.snap";
  const auto w = WriteFile(s, path);
  ASSERT_TRUE(w.ok()) << w.error();
  const auto back = ReadFile(path);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_TRUE(back->cpu == s.cpu);
  EXPECT_EQ(back->pages.size(), s.pages.size());
  EXPECT_EQ(back->fds.size(), s.fds.size());

  const auto missing = ReadFile(testing::TempDir() + "/no_such.snap");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.error().find("cannot open"), std::string::npos);
}

// ---- Capture / restore ---------------------------------------------------

// Exits with 42 after writing "hi" so spawn-equivalence is observable.
const char* kHelloProg = R"(
    adrp x1, msg
    add x1, x1, :lo12:msg
    mov x0, #1
    mov x2, #2
    rtcall #1
    mov x0, #42
    rtcall #0
  .data
  msg:
    .asciz "hi"
)";

struct Loaded {
  Runtime rt;
  int pid = -1;
  explicit Loaded(const std::string& src, RuntimeConfig cfg = TestConfig())
      : rt(cfg) {
    auto elf = test::BuildElf(src);
    EXPECT_TRUE(elf.ok()) << (elf.ok() ? "" : elf.error());
    if (!elf.ok()) return;
    auto p = rt.Load({elf->data(), elf->size()});
    EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error());
    if (p.ok()) pid = *p;
  }
  Proc* P() { return rt.proc(pid); }
};

std::shared_ptr<const Snapshot> Capture(Runtime& rt, int pid) {
  auto snap = rt.CaptureSnapshot(pid);
  EXPECT_TRUE(snap.ok()) << (snap.ok() ? "" : snap.error());
  if (!snap.ok()) return nullptr;
  return std::make_shared<Snapshot>(*std::move(snap));
}

TEST(Snapshot, CaptureFailsForExitedOrUnknownProc) {
  Loaded t(kHelloProg);
  ASSERT_GE(t.pid, 0);
  EXPECT_FALSE(t.rt.CaptureSnapshot(99).ok());
  t.rt.RunUntilIdle();
  ASSERT_EQ(t.P()->exit_kind, ExitKind::kExited);
  EXPECT_FALSE(t.rt.CaptureSnapshot(t.pid).ok());
}

TEST(Snapshot, RestoreMatchesFreshLoadBitExactly) {
  // Capture the post-load state, trash the live sandbox (registers,
  // memory, heap cursors), roll back, and compare every register and
  // every mapped byte against a second runtime that just loaded the same
  // ELF. Both runtimes assign pid 1 -> slot 1, so the canonical (rebased)
  // states must be identical, not merely equivalent.
  Loaded a(kHelloProg);
  ASSERT_GE(a.pid, 0);
  auto snap = Capture(a.rt, a.pid);
  ASSERT_NE(snap, nullptr);

  Proc* live = a.P();
  for (int r = 0; r < 31; ++r) live->cpu.x[r] ^= 0xdead0000 + r;
  live->cpu.sp -= 64;
  live->cpu.pc += 8;
  live->cpu.n = !live->cpu.n;
  live->brk += kPage;
  live->mmap_bytes += kPage;
  std::vector<uint8_t> junk(kPage, 0xcc);
  for (const auto& [off, range] : live->mappings) {
    ASSERT_TRUE(
        a.rt.space().HostWrite(live->base + off, {junk.data(), kPage}).ok());
    (void)range;
  }
  const auto st = a.rt.RestoreFromSnapshot(a.pid, *snap);
  ASSERT_TRUE(st.ok()) << st.error();
  EXPECT_EQ(a.rt.last_instantiation().method,
            runtime::InstantiationStats::Method::kSnapshotRestore);

  Loaded b(kHelloProg);
  ASSERT_EQ(b.pid, a.pid);
  ASSERT_EQ(b.P()->base, a.P()->base);

  EXPECT_TRUE(a.P()->cpu == b.P()->cpu);
  EXPECT_EQ(a.P()->brk_start, b.P()->brk_start);
  EXPECT_EQ(a.P()->brk, b.P()->brk);
  EXPECT_EQ(a.P()->brk_mapped, b.P()->brk_mapped);
  EXPECT_EQ(a.P()->mmap_cursor, b.P()->mmap_cursor);
  EXPECT_EQ(a.P()->mmap_bytes, b.P()->mmap_bytes);
  ASSERT_EQ(a.P()->mappings, b.P()->mappings);
  for (const auto& [off, range] : b.P()->mappings) {
    for (uint64_t o = 0; o < range.first; o += kPage) {
      std::vector<uint8_t> pa(kPage), pb(kPage);
      ASSERT_TRUE(
          a.rt.space().HostRead(a.P()->base + off + o, {pa.data(), kPage}).ok());
      ASSERT_TRUE(
          b.rt.space().HostRead(b.P()->base + off + o, {pb.data(), kPage}).ok());
      EXPECT_EQ(pa, pb) << "page at slot offset 0x" << std::hex << (off + o);
    }
  }
}

TEST(Snapshot, CaptureIsCopyOnWriteWhileLiveSandboxRuns) {
  // Writing into the live sandbox after capture must not reach the frozen
  // image; restoring brings the original bytes back.
  Loaded t(kHelloProg);
  ASSERT_GE(t.pid, 0);
  auto snap = Capture(t.rt, t.pid);
  ASSERT_NE(snap, nullptr);

  // The stack page (the highest mapping) is RW and starts zeroed.
  const auto& [stack_off, stack_range] = *t.P()->mappings.rbegin();
  const uint64_t addr = t.P()->base + stack_off;
  uint8_t before = 0;
  ASSERT_TRUE(t.rt.space().HostRead(addr, {&before, 1}).ok());
  const uint8_t poison = static_cast<uint8_t>(before ^ 0x5a);
  ASSERT_TRUE(t.rt.space().HostWrite(addr, {&poison, 1}).ok());

  // The frozen page still holds the pre-write byte.
  const PageRec* frozen = nullptr;
  for (const auto& p : snap->pages) {
    if (p.offset == stack_off) frozen = &p;
  }
  ASSERT_NE(frozen, nullptr);
  EXPECT_EQ((*frozen->data)[0], before);

  const auto st = t.rt.RestoreFromSnapshot(t.pid, *snap);
  ASSERT_TRUE(st.ok()) << st.error();
  uint8_t after = 0;
  ASSERT_TRUE(t.rt.space().HostRead(addr, {&after, 1}).ok());
  EXPECT_EQ(after, before);
  (void)stack_range;
}

TEST(Snapshot, RestoreCountsOnlyDivergedAndStrayPages) {
  Loaded t(kHelloProg);
  ASSERT_GE(t.pid, 0);
  auto snap = Capture(t.rt, t.pid);
  ASSERT_NE(snap, nullptr);

  // Nothing diverged yet: a restore installs zero pages.
  ASSERT_TRUE(t.rt.RestoreFromSnapshot(t.pid, *snap).ok());
  EXPECT_EQ(t.rt.last_instantiation().dirty_pages, 0u);
  EXPECT_EQ(t.rt.last_instantiation().unmapped_pages, 0u);

  // Dirty exactly one page.
  const uint64_t stack_off = t.P()->mappings.rbegin()->first;
  const uint8_t poke = 0x77;
  ASSERT_TRUE(t.rt.space().HostWrite(t.P()->base + stack_off, {&poke, 1}).ok());
  ASSERT_TRUE(t.rt.RestoreFromSnapshot(t.pid, *snap).ok());
  EXPECT_EQ(t.rt.last_instantiation().dirty_pages, 1u);
  EXPECT_EQ(t.rt.last_instantiation().pages, snap->page_count());

  // Map a stray page the image does not know about; restore removes it.
  const uint64_t stray_off = uint64_t{0x10000000};
  ASSERT_TRUE(t.rt.space()
                  .Map(t.P()->base + stray_off, kPage,
                       emu::kPermRead | emu::kPermWrite)
                  .ok());
  t.P()->mappings[stray_off] = {kPage, emu::kPermRead | emu::kPermWrite};
  ASSERT_TRUE(t.rt.RestoreFromSnapshot(t.pid, *snap).ok());
  EXPECT_EQ(t.rt.last_instantiation().unmapped_pages, 1u);
  EXPECT_EQ(t.P()->mappings.count(stray_off), 0u);
  uint8_t scratch = 0;
  EXPECT_FALSE(
      t.rt.space().HostRead(t.P()->base + stray_off, {&scratch, 1}).ok());
}

// ---- Spawn ---------------------------------------------------------------

TEST(Snapshot, SpawnedSandboxRunsIdenticallyToOriginal) {
  Loaded t(kHelloProg);
  ASSERT_GE(t.pid, 0);
  auto snap = Capture(t.rt, t.pid);
  ASSERT_NE(snap, nullptr);
  t.rt.RunUntilIdle();
  ASSERT_EQ(t.P()->exit_kind, ExitKind::kExited);

  auto spawned = t.rt.SpawnFromSnapshot(snap);
  ASSERT_TRUE(spawned.ok()) << spawned.error();
  EXPECT_EQ(t.rt.last_instantiation().method,
            runtime::InstantiationStats::Method::kSnapshotSpawn);
  t.rt.RunUntilIdle();
  const Proc* p2 = t.rt.proc(*spawned);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->exit_kind, ExitKind::kExited);
  EXPECT_EQ(p2->exit_status, t.P()->exit_status);
  EXPECT_EQ(p2->out, t.P()->out);
  EXPECT_NE(p2->pid, t.pid);  // a genuinely new sandbox, not a rollback
}

TEST(Snapshot, SnapshotSurvivesDiskRoundTripAndSpawnsInFreshRuntime) {
  Loaded t(kHelloProg);
  ASSERT_GE(t.pid, 0);
  auto snap = Capture(t.rt, t.pid);
  ASSERT_NE(snap, nullptr);
  const std::string path = testing::TempDir() + "/lfi_spawn_test.snap";
  ASSERT_TRUE(WriteFile(*snap, path).ok());

  Runtime rt2(TestConfig());
  auto back = ReadFile(path);
  ASSERT_TRUE(back.ok()) << back.error();
  auto pid = rt2.SpawnFromSnapshot(std::make_shared<Snapshot>(*std::move(back)));
  ASSERT_TRUE(pid.ok()) << pid.error();
  rt2.RunUntilIdle();
  EXPECT_EQ(rt2.proc(*pid)->exit_kind, ExitKind::kExited);
  EXPECT_EQ(rt2.proc(*pid)->exit_status, 42);
  EXPECT_EQ(rt2.proc(*pid)->out, "hi");
}

TEST(Snapshot, FdStateSurvivesCaptureAndSpawn) {
  Loaded t(kHelloProg);
  ASSERT_GE(t.pid, 0);
  Proc* p = t.P();

  // An open file mid-read and a pipe with bytes in flight.
  t.rt.vfs().Install("/data.txt", std::string("hello world"));
  int err = 0;
  auto node = t.rt.vfs().Open("/data.txt", runtime::kOpenRead, &err);
  ASSERT_NE(node, nullptr);
  FileDesc file;
  file.kind = FileDesc::Kind::kFile;
  file.node = node;
  file.offset = 4;
  file.flags = runtime::kOpenRead;
  file.path = "/data.txt";
  p->fds.push_back(file);

  auto pipe = std::make_shared<Pipe>();
  pipe->buf = {1, 2, 3};
  pipe->readers = 1;
  pipe->writers = 1;
  FileDesc rd;
  rd.kind = FileDesc::Kind::kPipeRead;
  rd.pipe = pipe;
  FileDesc wr;
  wr.kind = FileDesc::Kind::kPipeWrite;
  wr.pipe = pipe;
  p->fds.push_back(rd);
  p->fds.push_back(wr);
  const size_t file_fd = p->fds.size() - 3;

  auto snap = Capture(t.rt, t.pid);
  ASSERT_NE(snap, nullptr);
  auto spawned = t.rt.SpawnFromSnapshot(snap, /*start=*/false);
  ASSERT_TRUE(spawned.ok()) << spawned.error();
  const Proc* p2 = t.rt.proc(*spawned);
  ASSERT_NE(p2, nullptr);
  ASSERT_GE(p2->fds.size(), file_fd + 3);

  const FileDesc& f2 = p2->fds[file_fd];
  EXPECT_EQ(f2.kind, FileDesc::Kind::kFile);
  ASSERT_NE(f2.node, nullptr);
  EXPECT_EQ(std::string(f2.node->data.begin(), f2.node->data.end()),
            "hello world");
  EXPECT_EQ(f2.offset, 4u);
  EXPECT_EQ(f2.path, "/data.txt");

  const FileDesc& r2 = p2->fds[file_fd + 1];
  const FileDesc& w2 = p2->fds[file_fd + 2];
  EXPECT_EQ(r2.kind, FileDesc::Kind::kPipeRead);
  EXPECT_EQ(w2.kind, FileDesc::Kind::kPipeWrite);
  ASSERT_NE(r2.pipe, nullptr);
  EXPECT_EQ(r2.pipe, w2.pipe);        // endpoints re-joined...
  EXPECT_NE(r2.pipe, pipe);           // ...as a private pipe, not the live one
  EXPECT_EQ(r2.pipe->buf, (std::deque<uint8_t>{1, 2, 3}));
  EXPECT_EQ(r2.pipe->readers, 1);
  EXPECT_EQ(r2.pipe->writers, 1);
}

TEST(Snapshot, ParkedSpawnRunsOnlyAfterActivate) {
  Loaded t(kHelloProg);
  ASSERT_GE(t.pid, 0);
  auto snap = Capture(t.rt, t.pid);
  ASSERT_NE(snap, nullptr);

  auto parked = t.rt.SpawnFromSnapshot(snap, /*start=*/false);
  ASSERT_TRUE(parked.ok()) << parked.error();
  t.rt.RunUntilIdle();
  const Proc* p2 = t.rt.proc(*parked);
  ASSERT_NE(p2, nullptr);
  EXPECT_TRUE(p2->parked);
  EXPECT_EQ(p2->exit_kind, ExitKind::kRunning);  // never scheduled

  EXPECT_FALSE(t.rt.Activate(t.pid).ok());  // only parked procs activate
  ASSERT_TRUE(t.rt.Activate(*parked).ok());
  EXPECT_FALSE(p2->parked);
  EXPECT_FALSE(t.rt.Activate(*parked).ok());  // double-activate rejected
  t.rt.RunUntilIdle();
  EXPECT_EQ(p2->exit_kind, ExitKind::kExited);
  EXPECT_EQ(p2->exit_status, 42);
}

TEST(Snapshot, SpawnPoolServesWarmThenColdSpawns) {
  Loaded t(kHelloProg);
  ASSERT_GE(t.pid, 0);
  auto snap = Capture(t.rt, t.pid);
  ASSERT_NE(snap, nullptr);

  runtime::SpawnPool pool(&t.rt, snap);
  EXPECT_EQ(pool.Prewarm(2), 2);
  EXPECT_EQ(pool.warm(), 2u);
  EXPECT_EQ(pool.Prewarm(2), 0);  // already at target

  std::vector<int> pids;
  for (int k = 0; k < 3; ++k) {
    auto pid = pool.Take();
    ASSERT_TRUE(pid.ok()) << pid.error();
    pids.push_back(*pid);
  }
  EXPECT_EQ(pool.warm(), 0u);
  EXPECT_EQ(pool.warm_hits(), 2u);
  EXPECT_EQ(pool.cold_spawns(), 1u);

  t.rt.RunUntilIdle();
  for (int pid : pids) {
    EXPECT_EQ(t.rt.proc(pid)->exit_kind, ExitKind::kExited);
    EXPECT_EQ(t.rt.proc(pid)->exit_status, 42);
    EXPECT_EQ(t.rt.proc(pid)->out, "hi");
  }
}

}  // namespace
}  // namespace lfi::snapshot
