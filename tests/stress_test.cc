// Stress and robustness tests: many sandboxes, fork storms, pipe volume,
// slot exhaustion, scheduler determinism.

#include <gtest/gtest.h>

#include "pipeline_util.h"
#include "runtime/runtime.h"

namespace lfi::runtime {
namespace {

RuntimeConfig Cfg() {
  RuntimeConfig cfg;
  cfg.core = arch::AppleM1LikeParams();
  return cfg;
}

TEST(Stress, SixtyFourConcurrentSandboxes) {
  // 64 compute loops time-sharing one core; all must finish with their
  // own pid as status and the cycle count must scale ~linearly.
  const std::string prog = R"(
    movz x9, #3000
  loop:
    subs x9, x9, #1
    b.ne loop
    rtcall #12
    rtcall #0
  )";
  RuntimeConfig cfg = Cfg();
  cfg.timeslice_insts = 500;  // force heavy interleaving
  Runtime rt(cfg);
  auto e = test::BuildElf(prog);
  ASSERT_TRUE(e.ok());
  std::vector<int> pids;
  for (int k = 0; k < 64; ++k) {
    auto p = rt.Load({e->data(), e->size()});
    ASSERT_TRUE(p.ok()) << p.error();
    pids.push_back(*p);
  }
  EXPECT_EQ(rt.RunUntilIdle(), 0);
  for (int pid : pids) {
    EXPECT_EQ(rt.proc(pid)->exit_status, pid);
  }
  EXPECT_EQ(rt.slots_in_use(), 0u);  // all reclaimed (no parents waiting)
}

TEST(Stress, ForkChainReclaimsEverySlot) {
  // Each process forks a child, waits for it, and adds 1 to the child's
  // status; depth 12 => final status 12.
  const std::string prog = R"(
    adrp x9, depth
    add x9, x9, :lo12:depth
    ldr x1, [x9]
    cmp x1, #12
    b.hs leafcase
    add x1, x1, #1
    str x1, [x9]
    rtcall #8
    cbz x0, childcase
    adrp x0, status
    add x0, x0, :lo12:status
    rtcall #9
    adrp x0, status
    add x0, x0, :lo12:status
    ldr w0, [x0]
    add x0, x0, #1
    rtcall #0
  childcase:
    b _start
  leafcase:
    mov x0, #0
    rtcall #0
  .text
  )";
  // Note: the program re-enters _start in the child; provide the label.
  const std::string full = ".globl _start\n.text\n_start:\n" + prog +
                           "\n.bss\ndepth:\n.zero 8\nstatus:\n.zero 8\n";
  Runtime rt(Cfg());
  auto e = test::BuildElf(full);
  ASSERT_TRUE(e.ok()) << e.error();
  auto pid = rt.Load({e->data(), e->size()});
  ASSERT_TRUE(pid.ok());
  EXPECT_EQ(rt.RunUntilIdle(), 0);
  EXPECT_EQ(rt.proc(*pid)->exit_status, 12);
  EXPECT_EQ(rt.slots_in_use(), 0u);
}

TEST(Stress, PipeBulkTransferIntegrity) {
  // Parent streams 64KiB through a pipe in 1000-byte chunks (crossing the
  // pipe's internal capacity repeatedly); child checksums it.
  const std::string prog = R"(
.globl _start
.text
_start:
  adrp x25, fds
  add x25, x25, :lo12:fds
  mov x0, x25
  rtcall #10
  rtcall #8
  cbz x0, reader
  // writer: 64 chunks of 1000 bytes with bytes = chunk index.
  ldr w0, [x25]
  rtcall #4              // close our read end
  mov x19, #0
wchunk:
  adrp x1, buf
  add x1, x1, :lo12:buf
  mov x9, #0
wfill:
  strb w19, [x1, x9]
  add x9, x9, #1
  cmp x9, #1000
  b.lo wfill
  ldr w0, [x25, #4]
  movz x2, #1000
wmore:
  rtcall #1              // write may be partial: loop the remainder
  sub x2, x2, x0
  add x1, x1, x0
  ldr w0, [x25, #4]
  cbnz x2, wmore
  add x19, x19, #1
  cmp x19, #64
  b.lo wchunk
  ldr w0, [x25, #4]
  rtcall #4              // close write end -> EOF downstream
  mov x0, #0
  rtcall #9              // wait for the reader
  mov x0, #0
  rtcall #0
reader:
  ldr w0, [x25, #4]
  rtcall #4              // close our write end
  mov x13, #0            // checksum
  mov x12, #0            // total
rchunk:
  ldr w0, [x25]
  adrp x1, buf2
  add x1, x1, :lo12:buf2
  movz x2, #1000
  rtcall #2
  cbz x0, rdone
  mov x9, #0
  adrp x1, buf2
  add x1, x1, :lo12:buf2
radd:
  ldrb w10, [x1, x9]
  add x13, x13, x10
  add x9, x9, #1
  cmp x9, x0
  b.lo radd
  add x12, x12, x0
  b rchunk
rdone:
  // expected checksum: sum over chunks c of 1000*c = 1000*2016 = 2016000
  movz x9, #0xC300
  movk x9, #0x1E, lsl #16  // 2016000
  sub x0, x13, x9
  movz x10, #0xFA00        // 64 * 1000 bytes total
  sub x12, x12, x10
  add x0, x0, x12          // 0 only if checksum AND total are right
  add x0, x0, #5           // exit 5 on success (0 could mask bugs)
  rtcall #0
.bss
fds:
  .zero 8
buf:
  .zero 1024
buf2:
  .zero 1024
)";
  Runtime rt(Cfg());
  auto e = test::BuildElf(prog);
  ASSERT_TRUE(e.ok()) << e.error();
  auto pid = rt.Load({e->data(), e->size()});
  ASSERT_TRUE(pid.ok());
  EXPECT_EQ(rt.RunUntilIdle(uint64_t{500} * 1000 * 1000), 0);
  EXPECT_EQ(rt.proc(*pid)->exit_status, 0);  // parent exits 0
  // The child (pid+1) carries the verdict.
  EXPECT_EQ(rt.proc(*pid + 1)->exit_status, 5);
}

TEST(Stress, SlotExhaustionFailsGracefully) {
  // Cap the slot space artificially by reserving almost everything, then
  // ensure Load reports an error instead of corrupting state.
  Runtime rt(Cfg());
  // Reserve slots until close to the cap is impractical (65k); instead
  // verify the arithmetic path: reserving N slots yields N distinct
  // bases, and the free list recycles.
  std::vector<uint64_t> slots;
  for (int k = 0; k < 100; ++k) {
    auto s = rt.ReserveSlot();
    ASSERT_TRUE(s.ok());
    slots.push_back(*s);
  }
  std::sort(slots.begin(), slots.end());
  EXPECT_EQ(std::unique(slots.begin(), slots.end()), slots.end());
  EXPECT_EQ(rt.slots_in_use(), 100u);
}

TEST(Stress, SchedulingIsDeterministic) {
  // Two interleaving processes must produce identical cycle counts across
  // runs - the whole substrate is deterministic, which is what makes the
  // benchmark results exact.
  auto run = [] {
    const std::string prog = R"(
      movz x9, #2000
    loop:
      subs x9, x9, #1
      b.ne loop
      rtcall #12
      rtcall #0
    )";
    RuntimeConfig cfg = Cfg();
    cfg.timeslice_insts = 333;
    Runtime rt(cfg);
    auto e = test::BuildElf(prog);
    auto p1 = rt.Load({e->data(), e->size()});
    auto p2 = rt.Load({e->data(), e->size()});
    EXPECT_TRUE(p1.ok() && p2.ok());
    rt.RunUntilIdle();
    return rt.Cycles();
  };
  const uint64_t a = run();
  const uint64_t b = run();
  EXPECT_EQ(a, b);
}

TEST(Stress, TimesliceAffectsSwitchOverheadMonotonically) {
  auto run = [](uint64_t slice) {
    const std::string prog = R"(
      movz x9, #20000
    loop:
      subs x9, x9, #1
      b.ne loop
      mov x0, #0
      rtcall #0
    )";
    RuntimeConfig cfg = Cfg();
    cfg.timeslice_insts = slice;
    Runtime rt(cfg);
    auto e = test::BuildElf(prog);
    auto p1 = rt.Load({e->data(), e->size()});
    auto p2 = rt.Load({e->data(), e->size()});
    EXPECT_TRUE(p1.ok() && p2.ok());
    rt.RunUntilIdle();
    return rt.Cycles();
  };
  // Shorter timeslices mean more context switches: strictly more cycles.
  EXPECT_GT(run(100), run(10000));
}

}  // namespace
}  // namespace lfi::runtime
