// Supervisor tests: fault policies (kill / signal / restart), the signal
// delivery + sigreturn ABI (including forged-frame rejection), and the
// per-sandbox resource limits with graceful degradation.

#include <gtest/gtest.h>

#include <string>

#include "fuzz/rng.h"
#include "pipeline_util.h"
#include "runtime/runtime.h"

namespace lfi::runtime {
namespace {

RuntimeConfig TestConfig() {
  RuntimeConfig cfg;
  cfg.core = arch::AppleM1LikeParams();
  return cfg;
}

struct TestRun {
  Runtime rt;
  int pid = -1;

  explicit TestRun(const std::string& src, bool rewrite = true,
                   RuntimeConfig cfg = TestConfig())
      : rt(cfg) {
    auto elf_bytes = test::BuildElf(src, rewrite);
    EXPECT_TRUE(elf_bytes.ok()) << (elf_bytes.ok() ? "" : elf_bytes.error());
    if (!elf_bytes.ok()) return;
    auto p = rt.Load({elf_bytes->data(), elf_bytes->size()});
    EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error());
    if (p.ok()) pid = *p;
  }

  Proc* P() { return rt.proc(pid); }
};

// ---- Signal policy -------------------------------------------------------

// Hand-guarded (rewrite=false): register a SIGSEGV handler, fault on a
// guard-region load, redirect the resume pc past the faulting instruction
// from inside the handler, sigreturn, and prove the interrupted register
// state (x19) survived the round trip.
TEST(Supervisor, SignalDeliveryAndSigreturnResume) {
  TestRun t(R"(
    adrp x1, handler
    add x1, x1, :lo12:handler
    mov x0, #11             // SIGSEGV
    ldr x30, [x21, #128]    // call-table entry 16 = sigaction
    blr x30
    cbnz x0, bad
    movz x19, #0x1234       // must survive fault -> handler -> sigreturn
    movz x1, #0x4000        // guard-region offset: unmapped
    add x18, x21, w1, uxtw
    ldr x0, [x18]           // faults; handler redirects resume here:
  resume:
    movz x2, #0x1234
    cmp x19, x2
    b.ne bad
    movz x0, #0x900d
    ldr x30, [x21]          // entry 0 = exit
    blr x30
  bad:
    mov x0, #1
    ldr x30, [x21]
    blr x30
  handler:
    // Entered with x0 = signo, x1 = frame address, sp = frame address.
    cmp x0, #11
    b.ne bad
    adrp x2, resume
    add x2, x2, :lo12:resume
    str x2, [sp, #32]       // frame.pc: redirect the resume
    mov x0, x1
    ldr x30, [x21, #136]    // entry 17 = sigreturn
    blr x30
  )",
            /*rewrite=*/false);
  ASSERT_GE(t.pid, 0);
  SupervisorPolicy pol;
  pol.on_fault = FaultAction::kSignal;
  t.rt.set_policy(t.pid, pol);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_kind, ExitKind::kExited);
  EXPECT_EQ(t.P()->exit_status, 0x900d);
  EXPECT_EQ(t.P()->disposition, Disposition::kSignaled);
  EXPECT_EQ(t.P()->sig.delivered, 1u);
  EXPECT_FALSE(t.P()->sig.in_handler);
}

TEST(Supervisor, DoubleFaultKills) {
  TestRun t(R"(
    adrp x1, handler
    add x1, x1, :lo12:handler
    mov x0, #11
    ldr x30, [x21, #128]    // sigaction(SIGSEGV, handler)
    blr x30
    movz x1, #0x4000
    add x18, x21, w1, uxtw
    ldr x0, [x18]           // first fault: delivered
  handler:
    movz x1, #0x4000
    add x18, x21, w1, uxtw
    ldr x0, [x18]           // second fault inside the handler: kill
  )",
            /*rewrite=*/false);
  ASSERT_GE(t.pid, 0);
  SupervisorPolicy pol;
  pol.on_fault = FaultAction::kSignal;
  t.rt.set_policy(t.pid, pol);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_kind, ExitKind::kKilled);
  EXPECT_EQ(t.P()->disposition, Disposition::kKilled);
  EXPECT_EQ(t.P()->term_signal, kSigSegv);
  EXPECT_EQ(t.P()->sig.delivered, 1u);
  EXPECT_NE(t.P()->fault_detail.find("double fault"), std::string::npos)
      << t.P()->fault_detail;
}

TEST(Supervisor, SignalPolicyWithoutHandlerFallsBackToKill) {
  TestRun t(R"(
    movz x1, #0x4000
    add x18, x21, w1, uxtw
    ldr x0, [x18]
  )",
            /*rewrite=*/false);
  ASSERT_GE(t.pid, 0);
  SupervisorPolicy pol;
  pol.on_fault = FaultAction::kSignal;
  t.rt.set_policy(t.pid, pol);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_kind, ExitKind::kKilled);
  EXPECT_EQ(t.P()->term_signal, kSigSegv);
  EXPECT_EQ(t.P()->sig.delivered, 0u);
}

TEST(Supervisor, SigreturnWithoutFrameKills) {
  TestRun t(R"(
    mov x0, #0
    rtcall #17              // sigreturn with no delivered signal
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_kind, ExitKind::kKilled);
  EXPECT_EQ(t.P()->term_signal, kSigSegv);
  EXPECT_NE(t.P()->fault_detail.find("no matching signal frame"),
            std::string::npos)
      << t.P()->fault_detail;
}

TEST(Supervisor, SigactionValidatesArguments) {
  TestRun t(R"(
    mov x0, #40             // signo out of range
    mov x1, #8
    rtcall #16
    cmn x0, #22             // -EINVAL
    b.ne bad
    mov x0, #11
    mov x1, #6              // unaligned handler address
    rtcall #16
    cmn x0, #22
    b.ne bad
    mov x0, #0
    rtcall #0
  bad:
    mov x0, #1
    rtcall #0
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_kind, ExitKind::kExited);
  EXPECT_EQ(t.P()->exit_status, 0);
}

// Near-miss sigreturn fuzzing: the handler corrupts one 8-byte word of
// the live signal frame (offset baked in per trial, chosen by a seeded
// rng), then sigreturns. Corrupting the magic or cookie words must be
// rejected as a forgery; corrupting restored-register words must still be
// contained (re-canonicalization keeps the sandbox inside its slot), and
// the runtime must survive every trial.
TEST(Supervisor, SigreturnFrameFuzzNearMiss) {
  static constexpr uint64_t kValidatedOffsets[] = {kSigOffMagic,
                                                   kSigOffCookie};
  static constexpr uint64_t kRestoredOffsets[] = {
      kSigOffPc, kSigOffSp, kSigOffRegs + 8 * 18, kSigOffRegs + 8 * 24,
      kSigOffRegs + 8 * 30};
  fuzz::Rng rng(fuzz::DeriveSeed(0x5167f7a2, 1));
  for (int trial = 0; trial < 10; ++trial) {
    const bool validated = rng.Chance(50);
    const uint64_t off = validated ? rng.Pick(kValidatedOffsets)
                                   : rng.Pick(kRestoredOffsets);
    const std::string src = R"(
    adrp x1, handler
    add x1, x1, :lo12:handler
    mov x0, #11
    ldr x30, [x21, #128]    // sigaction(SIGSEGV, handler)
    blr x30
    movz x1, #0x4000
    add x18, x21, w1, uxtw
    ldr x0, [x18]           // fault -> handler
  resume:
    movz x0, #0x77
    ldr x30, [x21]
    blr x30
  handler:
    // Bump a persistent entry counter; a corrupted-but-restored frame
    // may re-fault and re-deliver, so bail out on the second entry
    // instead of looping forever.
    adrp x4, cnt
    add x4, x4, :lo12:cnt
    add x18, x21, w4, uxtw
    ldr x5, [x18]
    add x5, x5, #1
    str x5, [x18]
    cmp x5, #2
    b.ge giveup
    adrp x2, resume
    add x2, x2, :lo12:resume
    str x2, [sp, #32]       // redirect the resume
    mov x4, sp
    add w4, w4, #)" + std::to_string(off) + R"(
    add x18, x21, w4, uxtw
    movz x5, #0xbad
    str x5, [x18]           // corrupt one frame word
    mov x0, sp
    ldr x30, [x21, #136]    // sigreturn
    blr x30
  giveup:
    movz x0, #0x66
    ldr x30, [x21]
    blr x30
  .bss
  cnt:
    .zero 8
  )";
    TestRun t(src, /*rewrite=*/false);
    ASSERT_GE(t.pid, 0) << "trial " << trial;
    SupervisorPolicy pol;
    pol.on_fault = FaultAction::kSignal;
    t.rt.set_policy(t.pid, pol);
    t.rt.RunUntilIdle(2000000);
    if (validated) {
      // Magic/cookie corruption is a forgery: killed, never resumed.
      EXPECT_EQ(t.P()->exit_kind, ExitKind::kKilled) << "off " << off;
      EXPECT_NE(t.P()->fault_detail.find("forged sigreturn frame"),
                std::string::npos)
          << t.P()->fault_detail;
    } else {
      // Restored-word corruption must stay contained: either the sandbox
      // recovered (pc redirect survived) or it died inside its slot. The
      // runtime itself survived either way.
      EXPECT_TRUE(t.P()->exit_kind == ExitKind::kExited ||
                  t.P()->exit_kind == ExitKind::kKilled);
    }
  }
}

// ---- Restart policy ------------------------------------------------------

TEST(Supervisor, RestartPolicyReloadsUntilBudgetExhausted) {
  // The program writes one byte then faults; under restart policy with
  // budget 2 it runs three times total (so stdout shows "AAA"), then the
  // policy degrades to kill.
  TestRun t(R"(
    adrp x1, msg
    add x1, x1, :lo12:msg
    mov x0, #1
    mov x2, #1
    ldr x30, [x21, #8]      // entry 1 = write
    blr x30
    movz x1, #0x4000
    add x18, x21, w1, uxtw
    ldr x0, [x18]
  .data
  msg:
    .asciz "A"
  )",
            /*rewrite=*/false);
  ASSERT_GE(t.pid, 0);
  SupervisorPolicy pol;
  pol.on_fault = FaultAction::kRestart;
  pol.restart_budget = 2;
  pol.restart_backoff_base_cycles = 100;
  t.rt.set_policy(t.pid, pol);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->out, "AAA");
  EXPECT_EQ(t.P()->restarts, 2u);
  EXPECT_EQ(t.P()->exit_kind, ExitKind::kKilled);
  EXPECT_EQ(t.P()->disposition, Disposition::kKilled);
  EXPECT_NE(t.P()->fault_detail.find("restart budget exhausted"),
            std::string::npos)
      << t.P()->fault_detail;
}

TEST(Supervisor, RestartBackoffGrowsAndIsCapped) {
  // Each successive restart charges (base << restarts), capped. Watch the
  // global clock across a two-restart run with a large base.
  TestRun t(R"(
    movz x1, #0x4000
    add x18, x21, w1, uxtw
    ldr x0, [x18]
  )",
            /*rewrite=*/false);
  ASSERT_GE(t.pid, 0);
  SupervisorPolicy pol;
  pol.on_fault = FaultAction::kRestart;
  pol.restart_budget = 3;
  pol.restart_backoff_base_cycles = 1000;
  pol.restart_backoff_cap_cycles = 1500;  // second restart hits the cap
  t.rt.set_policy(t.pid, pol);
  const uint64_t before = t.rt.Cycles();
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->restarts, 3u);
  // 1000 + 1500 + 1500 of pure backoff, plus execution noise.
  EXPECT_GE(t.rt.Cycles() - before, 4000u);
}

// A sandbox that spins well past the reset window before each fault:
// long-lived tenant with a rare fault, not a crash loop.
const char* kHealthyThenFaultProg = R"(
    movz x19, #20000
  spin:
    sub x19, x19, #1
    cbnz x19, spin
    movz x1, #0x4000
    add x18, x21, w1, uxtw
    ldr x0, [x18]
)";

TEST(Supervisor, RestartBudgetDecaysAfterHealthyRun) {
  // Regression: backoff/budget never reset, so a tenant faulting once a
  // day burned restart budget like a crash loop. With the reset window
  // below each incarnation's healthy runtime, the crash-window count
  // must stay at one while lifetime restarts sail past the budget.
  TestRun t(kHealthyThenFaultProg, /*rewrite=*/false);
  ASSERT_GE(t.pid, 0);
  SupervisorPolicy pol;
  pol.on_fault = FaultAction::kRestart;
  pol.restart_budget = 2;
  pol.restart_backoff_base_cycles = 100;
  pol.restart_reset_after_cycles = 1000;  // << one incarnation's cycles
  t.rt.set_policy(t.pid, pol);
  // Bounded run: the proc restarts forever now, which is the point.
  t.rt.RunUntilIdle(/*max_total_insts=*/600000);
  EXPECT_LE(t.P()->restarts, 1u);
  EXPECT_GT(t.P()->total_restarts, pol.restart_budget);
  EXPECT_NE(t.P()->exit_kind, ExitKind::kKilled);
}

TEST(Supervisor, RestartBudgetStillExhaustsWithDecayDisabled) {
  // restart_reset_after_cycles = 0 keeps the legacy semantics: healthy
  // incarnations don't matter, the budget only ever shrinks.
  TestRun t(kHealthyThenFaultProg, /*rewrite=*/false);
  ASSERT_GE(t.pid, 0);
  SupervisorPolicy pol;
  pol.on_fault = FaultAction::kRestart;
  pol.restart_budget = 2;
  pol.restart_backoff_base_cycles = 100;
  pol.restart_reset_after_cycles = 0;
  t.rt.set_policy(t.pid, pol);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->restarts, 2u);
  EXPECT_EQ(t.P()->total_restarts, 2u);
  EXPECT_EQ(t.P()->exit_kind, ExitKind::kKilled);
}

TEST(Supervisor, RestartBackoffResetsWithBudget) {
  // After a healthy run, the next fault pays base backoff again instead
  // of continuing up the exponential curve.
  TestRun t(kHealthyThenFaultProg, /*rewrite=*/false);
  ASSERT_GE(t.pid, 0);
  SupervisorPolicy pol;
  pol.on_fault = FaultAction::kRestart;
  pol.restart_budget = 8;
  pol.restart_backoff_base_cycles = 50000;  // would double per restart
  pol.restart_backoff_cap_cycles = 10000000;
  pol.restart_reset_after_cycles = 1000;
  t.rt.set_policy(t.pid, pol);
  const uint64_t before = t.rt.Cycles();
  t.rt.RunUntilIdle(/*max_total_insts=*/200000);
  const uint32_t n = t.P()->total_restarts;
  ASSERT_GE(n, 3u);
  // Every restart charged base (shift 0). Without the reset the first
  // four alone would charge 50k+100k+200k+400k = 750k cycles.
  const uint64_t elapsed = t.rt.Cycles() - before;
  EXPECT_LT(elapsed, 50000ull * n + 300000);
}

TEST(Supervisor, RestartPolicyRestartsForkedChildren) {
  // Regression: forked children have no ELF image of their own, and the
  // restart policy used to degrade to kill for them immediately. They now
  // restart from the snapshot captured at fork: the child re-enters at the
  // fork return (x0 = 0), faults again, and loops until the budget runs
  // out; the parent's wait then observes the kill.
  RuntimeConfig cfg = TestConfig();
  cfg.default_policy.on_fault = FaultAction::kRestart;
  cfg.default_policy.restart_budget = 2;
  cfg.default_policy.restart_backoff_base_cycles = 100;
  TestRun t(R"(
    ldr x30, [x21, #64]     // call-table entry 8 = fork
    blr x30
    cbz x0, child
    mov x0, sp              // parent: wait(&status) on the stack
    ldr x30, [x21, #72]     // entry 9 = wait
    blr x30
    ldr w0, [sp]
    ldr x30, [x21]          // entry 0 = exit(status word)
    blr x30
  child:
    movz x1, #0x4000        // guard-region offset: unmapped, faults
    add x18, x21, w1, uxtw
    ldr x0, [x18]
  )",
            /*rewrite=*/false, cfg);
  ASSERT_GE(t.pid, 0);
  t.rt.RunUntilIdle();

  const Proc* child = t.rt.proc(t.pid + 1);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->restarts, 2u);
  EXPECT_EQ(child->exit_kind, ExitKind::kKilled);
  EXPECT_NE(child->fault_detail.find("restart budget exhausted"),
            std::string::npos)
      << child->fault_detail;
  ASSERT_EQ(t.P()->exit_kind, ExitKind::kExited);
  EXPECT_EQ(t.P()->exit_status, 0x100 | kSigSegv);
}

// ---- Resource limits -----------------------------------------------------

TEST(Supervisor, CpuQuotaWatchdogKillsRunaway) {
  TestRun t(R"(
  loop:
    b loop
  )");
  ASSERT_GE(t.pid, 0);
  SupervisorPolicy pol;
  pol.limits.max_cpu_cycles = 50000;
  t.rt.set_policy(t.pid, pol);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_kind, ExitKind::kKilled);
  EXPECT_EQ(t.P()->term_signal, kSigXcpu);
  EXPECT_NE(t.P()->fault_detail.find("cpu quota exceeded"),
            std::string::npos)
      << t.P()->fault_detail;
  // Overshoot is bounded by one timeslice.
  EXPECT_LT(t.P()->cpu_cycles, 50000u + 4 * 100000u);
}

TEST(Supervisor, HeapLimitReturnsEnomem) {
  TestRun t(R"(
    mov x0, #0
    rtcall #5               // brk(0)
    mov x19, x0
    movz x1, #0x4, lsl #16
    add x0, x19, x1
    rtcall #5               // +256KiB: over the 128KiB cap
    cmn x0, #12             // -ENOMEM
    b.ne bad
    movz x1, #0x1, lsl #16
    add x0, x19, x1
    rtcall #5               // +64KiB: still fits
    cmn x0, #12
    b.eq bad
    mov x0, #0
    rtcall #0
  bad:
    mov x0, #1
    rtcall #0
  )");
  ASSERT_GE(t.pid, 0);
  SupervisorPolicy pol;
  pol.limits.max_heap_bytes = 128 * 1024;
  t.rt.set_policy(t.pid, pol);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_kind, ExitKind::kExited);
  EXPECT_EQ(t.P()->exit_status, 0);
}

TEST(Supervisor, MmapLimitTracksLiveBytes) {
  TestRun t(R"(
    movz x1, #0x4000        // one 16KiB page
    rtcall #6
    cmn x0, #12
    b.eq bad
    mov x19, x0
    movz x1, #0x4000
    rtcall #6               // second page: over the cap
    cmn x0, #12
    b.ne bad
    mov x0, x19
    movz x1, #0x4000
    rtcall #7               // munmap releases the accounting
    cbnz x0, bad
    movz x1, #0x4000
    rtcall #6               // fits again
    cmn x0, #12
    b.eq bad
    mov x0, #0
    rtcall #0
  bad:
    mov x0, #1
    rtcall #0
  )");
  ASSERT_GE(t.pid, 0);
  SupervisorPolicy pol;
  pol.limits.max_mmap_bytes = 16384;
  t.rt.set_policy(t.pid, pol);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_kind, ExitKind::kExited);
  EXPECT_EQ(t.P()->exit_status, 0);
}

TEST(Supervisor, FdCapReturnsEmfile) {
  TestRun t(R"(
    adrp x0, path
    add x0, x0, :lo12:path
    mov x1, #0
    rtcall #3               // open -> fd 3 (last slot under cap 4)
    cmp x0, #3
    b.ne bad
    adrp x0, path
    add x0, x0, :lo12:path
    mov x1, #0
    rtcall #3               // cap hit
    cmn x0, #24             // -EMFILE
    b.ne bad
    mov x0, #0
    rtcall #0
  bad:
    mov x0, #1
    rtcall #0
  .data
  path:
    .asciz "/etc/motd"
  )");
  ASSERT_GE(t.pid, 0);
  t.rt.vfs().Install("/etc/motd", std::string("hi"));
  SupervisorPolicy pol;
  pol.limits.max_fds = 4;
  t.rt.set_policy(t.pid, pol);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_kind, ExitKind::kExited);
  EXPECT_EQ(t.P()->exit_status, 0);
}

TEST(Supervisor, PipeCapReturnsEagainInsteadOfBlocking) {
  TestRun t(R"(
    adrp x0, fds
    add x0, x0, :lo12:fds
    rtcall #10              // pipe
    cbnz x0, bad
    adrp x1, fds
    add x1, x1, :lo12:fds
    ldr w19, [x1, #4]       // write end
    mov x0, x19
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #64
    rtcall #1               // fills the 64-byte capped pipe
    cmp x0, #64
    b.ne bad
    mov x0, x19
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #8
    rtcall #1               // full: EAGAIN, not a blocked writer
    cmn x0, #11
    b.ne bad
    mov x0, #0
    rtcall #0
  bad:
    mov x0, #1
    rtcall #0
  .bss
  fds:
    .zero 8
  buf:
    .zero 64
  )");
  ASSERT_GE(t.pid, 0);
  SupervisorPolicy pol;
  pol.limits.max_pipe_buffer_bytes = 64;
  t.rt.set_policy(t.pid, pol);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_kind, ExitKind::kExited);
  EXPECT_EQ(t.P()->exit_status, 0);
}

TEST(Supervisor, LimitsAndPolicyInheritedAcrossFork) {
  // The child inherits the parent's fd cap: its first open must fail the
  // same way the parent's would.
  TestRun t(R"(
    ldr x30, [x21, #64]     // fork
    blr x30
    cbz x0, child
    mov x0, sp
    ldr x30, [x21, #72]     // wait(&status)
    blr x30
    ldr w0, [sp]
    ldr x30, [x21]          // exit(child status)
    blr x30
  child:
    adrp x0, path
    add x0, x0, :lo12:path
    mov x1, #0
    ldr x30, [x21, #24]     // open under an exhausted fd cap
    blr x30
    cmn x0, #24
    b.ne bad
    movz x0, #0x33
    ldr x30, [x21]
    blr x30
  bad:
    mov x0, #1
    ldr x30, [x21]
    blr x30
  .data
  path:
    .asciz "/etc/motd"
  )",
            /*rewrite=*/false);
  ASSERT_GE(t.pid, 0);
  t.rt.vfs().Install("/etc/motd", std::string("hi"));
  SupervisorPolicy pol;
  pol.limits.max_fds = 3;  // only stdio fits
  t.rt.set_policy(t.pid, pol);
  t.rt.RunUntilIdle();
  EXPECT_EQ(t.P()->exit_status, 0x33);
}

}  // namespace
}  // namespace lfi::runtime
