// Trace subsystem tests: the per-sandbox instructions-retired counter must
// equal the Machine's own retire count under both dispatch strategies, and
// identical runs must produce byte-identical Chrome trace JSON (the trace
// clock is the simulated cycle counter, never host time). Also unit-tests
// the event ring and the stats/trace exporters.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "pipeline_util.h"
#include "runtime/runtime.h"
#include "trace/trace.h"

namespace lfi::trace {
namespace {

runtime::RuntimeConfig TestConfig() {
  runtime::RuntimeConfig cfg;
  cfg.core = arch::AppleM1LikeParams();
  return cfg;
}

// A program that exercises every counter family: memory traffic, fork,
// pipe transfer in both directions, several runtime calls, and a clean
// exit on both sides.
const char* kBusyProg = R"(
    adrp x0, fds
    add x0, x0, :lo12:fds
    rtcall #10          // pipe
    rtcall #8           // fork
    cbz x0, child
    adrp x9, fds
    add x9, x9, :lo12:fds
    ldr w0, [x9, #4]
    adrp x1, msg
    add x1, x1, :lo12:msg
    mov x2, #5
    rtcall #1           // write into the pipe
    adrp x0, status
    add x0, x0, :lo12:status
    rtcall #9           // wait for the child
    adrp x1, status
    add x1, x1, :lo12:status
    ldr w0, [x1]
    rtcall #0           // exit(child status)
  child:
    mov x10, #64        // a loop, so block dispatch gets cache hits
  cspin:
    subs x10, x10, #1
    b.ne cspin
    adrp x9, fds
    add x9, x9, :lo12:fds
    ldr w0, [x9]
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #5
    rtcall #2           // read from the pipe
    adrp x1, buf
    add x1, x1, :lo12:buf
    ldrb w0, [x1]
    rtcall #0           // exit(first byte)
  .data
  msg:
    .asciz "PING"
  .bss
  fds:
    .zero 8
  status:
    .zero 8
  buf:
    .zero 8
  )";

uint64_t TotalRetired(const TraceSink& sink) {
  uint64_t total = 0;
  for (const auto& [pid, m] : sink.all_metrics()) {
    total += m.Get(Counter::kInstRetired);
  }
  return total;
}

void RunBusyProg(runtime::Runtime& rt, TraceSink& sink) {
  rt.set_trace_sink(&sink);
  auto e = test::BuildElf(kBusyProg);
  ASSERT_TRUE(e.ok()) << e.error();
  auto pid = rt.Load({e->data(), e->size()});
  ASSERT_TRUE(pid.ok()) << pid.error();
  EXPECT_EQ(rt.RunUntilIdle(), 0);
  EXPECT_EQ(rt.proc(*pid)->exit_status, 'P');
}

TEST(Trace, RetiredCounterMatchesMachineUnderBlockDispatch) {
  runtime::Runtime rt(TestConfig());
  TraceSink sink;
  RunBusyProg(rt, sink);
  // Every instruction the machine retired belongs to exactly one pid.
  EXPECT_EQ(TotalRetired(sink), rt.machine().timing().Retired());
  EXPECT_GT(TotalRetired(sink), 0u);
}

TEST(Trace, RetiredCounterMatchesMachineUnderStepDispatch) {
  runtime::Runtime rt(TestConfig());
  rt.machine().set_dispatch(emu::Dispatch::kStep);
  TraceSink sink;
  RunBusyProg(rt, sink);
  EXPECT_EQ(TotalRetired(sink), rt.machine().timing().Retired());
}

TEST(Trace, StepAndBlockDispatchCountIdentically) {
  // The two dispatch strategies are semantically identical, so every
  // architectural counter (retired/loads/stores/guards/syscalls) must
  // match exactly; only the block-cache counters may differ.
  runtime::Runtime rt_block(TestConfig());
  TraceSink s_block;
  RunBusyProg(rt_block, s_block);

  runtime::Runtime rt_step(TestConfig());
  rt_step.machine().set_dispatch(emu::Dispatch::kStep);
  TraceSink s_step;
  RunBusyProg(rt_step, s_step);

  ASSERT_EQ(s_block.all_metrics().size(), s_step.all_metrics().size());
  for (const auto& [pid, mb] : s_block.all_metrics()) {
    const Metrics& ms = s_step.metrics(pid);
    for (Counter c : {Counter::kInstRetired, Counter::kGuardsExecuted,
                      Counter::kLoads, Counter::kStores, Counter::kSyscalls,
                      Counter::kPipeBytesRead, Counter::kPipeBytesWritten,
                      Counter::kForks}) {
      EXPECT_EQ(mb.Get(c), ms.Get(c))
          << "pid " << pid << " counter " << CounterName(c);
    }
    EXPECT_EQ(mb.syscalls, ms.syscalls) << "pid " << pid;
  }
  // Block dispatch actually used its cache on this workload.
  uint64_t hits = 0;
  for (const auto& [pid, m] : s_block.all_metrics()) {
    hits += m.Get(Counter::kBlockCacheHits);
  }
  EXPECT_GT(hits, 0u);
}

TEST(Trace, CountersSeeRealMemoryTraffic) {
  runtime::Runtime rt(TestConfig());
  TraceSink sink;
  RunBusyProg(rt, sink);
  uint64_t loads = 0, stores = 0, guards = 0, sys = 0;
  for (const auto& [pid, m] : sink.all_metrics()) {
    loads += m.Get(Counter::kLoads);
    stores += m.Get(Counter::kStores);
    guards += m.Get(Counter::kGuardsExecuted);
    sys += m.Get(Counter::kSyscalls);
  }
  EXPECT_GT(loads, 0u);
  EXPECT_GT(guards, 0u);
  // pipe + fork + write + wait + read + 2 exits.
  EXPECT_GE(sys, 7u);
  (void)stores;  // stores come from rtcall spills even if the program has none
}

TEST(Trace, SameSeedRunsProduceByteIdenticalTraceJson) {
  // Two fresh runtimes executing the same image must emit byte-identical
  // trace files: all timestamps come from the simulated clock.
  std::string first, second;
  for (std::string* out : {&first, &second}) {
    runtime::Runtime rt(TestConfig());
    TraceSink sink;
    RunBusyProg(rt, sink);
    std::ostringstream ss;
    sink.WriteChromeTrace(ss, TestConfig().core.ghz, runtime::RtcallName);
    *out = ss.str();
  }
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Trace, SameSeedRunsProduceIdenticalStatsTables) {
  std::string first, second;
  for (std::string* out : {&first, &second}) {
    runtime::Runtime rt(TestConfig());
    TraceSink sink;
    RunBusyProg(rt, sink);
    std::ostringstream ss;
    sink.WriteStats(ss, runtime::RtcallName);
    *out = ss.str();
  }
  EXPECT_EQ(first, second);
  // The table names the headline counters and resolves syscall names.
  EXPECT_NE(first.find("inst-retired"), std::string::npos);
  EXPECT_NE(first.find("pipe-bytes-read"), std::string::npos);
  EXPECT_NE(first.find("fork"), std::string::npos);
}

TEST(Trace, ChromeTraceIsWellFormedAndHostTimeFree) {
  runtime::Runtime rt(TestConfig());
  TraceSink sink;
  RunBusyProg(rt, sink);
  std::ostringstream ss;
  sink.WriteChromeTrace(ss, TestConfig().core.ghz, runtime::RtcallName);
  const std::string json = ss.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"sched-slice\""), std::string::npos);
  EXPECT_NE(json.find("\"proc-exit\""), std::string::npos);
  // Complete events carry durations; instants carry thread scope.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(Trace, EventRingKeepsNewestAndCountsDrops) {
  EventRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (uint64_t k = 0; k < 10; ++k) {
    ring.Push({/*start=*/k, /*end=*/k, /*arg0=*/k, /*arg1=*/0,
               /*pid=*/1, EventKind::kSyscall});
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  // at() is oldest-first over the retained window: 6,7,8,9.
  for (size_t k = 0; k < ring.size(); ++k) {
    EXPECT_EQ(ring.at(k).start, 6u + k);
  }
}

TEST(Trace, MetricsSyscallTallyClampsOutOfRange) {
  Metrics m;
  m.AddSyscall(3);
  m.AddSyscall(3);
  m.AddSyscall(1000);  // out of range: clamped into the last slot
  m.AddSyscall(-5);
  EXPECT_EQ(m.syscalls[3], 2u);
  EXPECT_EQ(m.syscalls[kMaxSyscalls - 1], 2u);
  for (size_t k = 0; k < m.syscalls.size(); ++k) {
    if (k != 3 && k != kMaxSyscalls - 1) {
      EXPECT_EQ(m.syscalls[k], 0u);
    }
  }
}

TEST(Trace, SinkStableAcrossPidInsertionOrder) {
  // all_metrics() iterates in pid order regardless of first-touch order,
  // which is what keeps the exporters deterministic.
  TraceSink sink;
  sink.metrics(7).Add(Counter::kFaults);
  sink.metrics(2).Add(Counter::kFaults);
  sink.metrics(5).Add(Counter::kFaults);
  int prev = -1;
  for (const auto& [pid, m] : sink.all_metrics()) {
    EXPECT_GT(pid, prev);
    prev = pid;
  }
  EXPECT_EQ(prev, 7);
}

}  // namespace
}  // namespace lfi::trace
