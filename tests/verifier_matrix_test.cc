// FailKind coverage matrix: every rejection kind the verifier can emit
// must be produced by at least one crafted text here, with the expected
// fail_offset. Adding a FailKind without extending CasesFor() fails
// loudly. Plus VerifyOptions interaction tests: exact FailKind
// transitions at guard/table boundaries and under check_loads/allow_llsc
// combinations.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "verifier/verifier.h"

namespace lfi::verifier {
namespace {

std::vector<uint8_t> AssembleRaw(const std::string& src) {
  auto f = asmtext::Parse(src);
  EXPECT_TRUE(f.ok()) << (f.ok() ? "" : f.error());
  asmtext::LayoutSpec spec;
  auto img = asmtext::Assemble(*f, spec);
  EXPECT_TRUE(img.ok()) << (img.ok() ? "" : img.error());
  return img.ok() ? img->text : std::vector<uint8_t>{};
}

VerifyResult Check(const std::string& src, VerifyOptions opts = {}) {
  auto text = AssembleRaw(src);
  return Verify({text.data(), text.size()}, opts);
}

struct KindCase {
  std::string name;
  // Either raw bytes (for texts the assembler cannot produce) or source.
  std::vector<uint8_t> bytes;
  std::string src;
  VerifyOptions opts;
  uint64_t fail_offset = 0;
};

// The coverage matrix. Every FailKind in (kNone, kCount) must have at
// least one case; returns nullopt for kinds with no case, which the test
// below reports as a loud failure naming the kind.
std::optional<std::vector<KindCase>> CasesFor(FailKind k) {
  VerifyOptions no_llsc;
  no_llsc.allow_llsc = false;
  switch (k) {
    case FailKind::kNone:
    case FailKind::kCount:
      return std::vector<KindCase>{};  // not real rejection kinds
    case FailKind::kTextSize:
      return std::vector<KindCase>{
          {"3-byte text", {1, 2, 3}, "", {}, 0},
          {"7-byte text", {0x1F, 0x20, 0x03, 0xD5, 1, 2, 3}, "", {}, 4},
      };
    case FailKind::kUndecodable:
      return std::vector<KindCase>{
          {"zero word after nop",
           {0x1F, 0x20, 0x03, 0xD5, 0, 0, 0, 0},
           "", {}, 4},
      };
    case FailKind::kSystemInstruction:
      return std::vector<KindCase>{
          {"svc", {}, "nop\nsvc #0\n", {}, 4},
      };
    case FailKind::kLlscDisallowed:
      return std::vector<KindCase>{
          {"ldxr with llsc off", {}, "add x18, x21, w0, uxtw\nldxr x1, [x18]\n",
           no_llsc, 4},
          {"stxr with llsc off", {}, "add x18, x21, w0, uxtw\n"
           "stxr w2, x1, [x18]\n", no_llsc, 4},
      };
    case FailKind::kBadAddressingMode:
      return std::vector<KindCase>{
          {"unguarded base", {}, "nop\nldr x0, [x1]\n", {}, 4},
          {"sxtw register offset", {},
           "ldr x0, [x21, w2, sxtw]\n", {}, 0},
      };
    case FailKind::kGuardRangeOverflow: {
      VerifyOptions small;
      small.guard_bytes = 1024;
      return std::vector<KindCase>{
          {"imm past shrunken guard", {}, "ldr x0, [x21, #1024]\n", small, 0},
      };
    }
    case FailKind::kReservedWriteback:
      return std::vector<KindCase>{
          {"post-index on x18", {}, "ldr x0, [x18], #8\n", {}, 0},
      };
    case FailKind::kUnguardedIndirectBranch:
      return std::vector<KindCase>{
          {"br scratch", {}, "nop\nbr x1\n", {}, 4},
          {"blr scratch", {}, "blr x9\n", {}, 0},
      };
    case FailKind::kBaseRegWrite:
      return std::vector<KindCase>{
          {"arith into x21", {}, "add x21, x21, #1\n", {}, 0},
          {"load into x21", {}, "ldr x21, [sp]\n", {}, 0},
      };
    case FailKind::kAddressRegWrite:
      return std::vector<KindCase>{
          {"arith into x18", {}, "nop\nadd x18, x0, x1\n", {}, 4},
          {"wrong guard base", {}, "add x23, x0, w1, uxtw\n", {}, 0},
      };
    case FailKind::kScratchRegWrite:
      return std::vector<KindCase>{
          {"64-bit write to x22", {}, "add x22, x0, x1\n", {}, 0},
          {"load into x22", {}, "ldr x22, [sp]\n", {}, 0},
      };
    case FailKind::kLinkRegProtocol:
      return std::vector<KindCase>{
          {"table load without blr", {}, "ldr x30, [x21, #24]\nnop\n", {}, 0},
          {"arith into x30", {}, "add x30, x0, x1\n", {}, 0},
      };
    case FailKind::kSpProtocol:
      return std::vector<KindCase>{
          {"sp from scratch", {}, "add sp, x0, #16\n", {}, 0},
          {"undischarged adjust", {}, "sub sp, sp, #32\nret\n", {}, 0},
      };
  }
  return std::nullopt;
}

TEST(FailKindMatrix, EveryKindHasACoveredCase) {
  for (uint8_t i = 1; i < static_cast<uint8_t>(FailKind::kCount); ++i) {
    const FailKind kind = static_cast<FailKind>(i);
    const auto cases = CasesFor(kind);
    if (!cases.has_value()) {
      ADD_FAILURE() << "FailKind " << FailKindName(kind)
                    << " has no coverage case; add one to CasesFor()";
      continue;
    }
    EXPECT_FALSE(cases->empty())
        << "FailKind " << FailKindName(kind) << " has an empty case list";
    for (const KindCase& c : *cases) {
      const std::vector<uint8_t> text =
          c.src.empty() ? c.bytes : AssembleRaw(c.src);
      const VerifyResult r = Verify({text.data(), text.size()}, c.opts);
      EXPECT_FALSE(r.ok) << FailKindName(kind) << " / " << c.name
                         << ": unexpectedly accepted";
      EXPECT_EQ(r.kind, kind)
          << c.name << " rejected as " << FailKindName(r.kind) << " ("
          << r.reason << ")";
      EXPECT_EQ(r.fail_offset, c.fail_offset) << c.name;
    }
  }
}

TEST(FailKindMatrix, NamesAreStableAndDistinct) {
  std::vector<std::string> seen;
  for (uint8_t i = 0; i < static_cast<uint8_t>(FailKind::kCount); ++i) {
    const std::string name = FailKindName(static_cast<FailKind>(i));
    EXPECT_FALSE(name.empty());
    for (const auto& other : seen) EXPECT_NE(name, other);
    seen.push_back(name);
  }
}

// --- VerifyOptions interactions -------------------------------------

TEST(VerifyOptionsMatrix, GuardBytesBoundaryExact) {
  VerifyOptions small;
  small.guard_bytes = 4096;
  // hi = imm + 8 must stay <= guard_bytes: 4088 is the last legal ldr.
  EXPECT_TRUE(Check("ldr x0, [x21, #4088]\n", small).ok);
  auto r = Check("ldr x0, [x21, #4096]\n", small);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.kind, FailKind::kGuardRangeOverflow);
  // Same offsets are fine under the default 48 KiB guard.
  EXPECT_TRUE(Check("ldr x0, [x21, #4096]\n").ok);
}

TEST(VerifyOptionsMatrix, NegativeGuardBoundaryExact) {
  VerifyOptions tiny;
  tiny.guard_bytes = 128;
  EXPECT_TRUE(Check("ldur x0, [x21, #-128]\n", tiny).ok);
  auto r = Check("ldur x0, [x21, #-129]\n", tiny);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.kind, FailKind::kGuardRangeOverflow);
}

TEST(VerifyOptionsMatrix, PairFootprintBoundaryExact) {
  VerifyOptions small;
  small.guard_bytes = 512;
  // Pair footprint is 16 bytes: 496 + 16 == 512 fits exactly.
  EXPECT_TRUE(Check("ldp x0, x1, [x21, #496]\n", small).ok);
  auto r = Check("ldp x0, x1, [x21, #504]\n", small);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.kind, FailKind::kGuardRangeOverflow);
}

TEST(VerifyOptionsMatrix, TableBytesBoundaryExact) {
  VerifyOptions small;
  small.table_bytes = 32;
  // Entry must fit: imm + 8 <= table_bytes.
  EXPECT_TRUE(Check("ldr x30, [x21, #24]\nblr x30\n", small).ok);
  auto r = Check("ldr x30, [x21, #32]\nblr x30\n", small);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.kind, FailKind::kLinkRegProtocol);
  EXPECT_EQ(r.fail_offset, 0u);
  // Growing the table flips the same text back to accepted.
  VerifyOptions bigger;
  bigger.table_bytes = 40;
  EXPECT_TRUE(Check("ldr x30, [x21, #32]\nblr x30\n", bigger).ok);
}

TEST(VerifyOptionsMatrix, CheckLoadsAndLlscInteraction) {
  VerifyOptions relaxed;       // loads unchecked, llsc allowed
  relaxed.check_loads = false;
  VerifyOptions strict;        // loads unchecked, llsc forbidden
  strict.check_loads = false;
  strict.allow_llsc = false;

  // Unguarded plain load: rejected by default, accepted when loads are
  // unchecked (stores stay checked either way).
  EXPECT_FALSE(Check("ldr x0, [x1]\n").ok);
  EXPECT_TRUE(Check("ldr x0, [x1]\n", relaxed).ok);
  EXPECT_FALSE(Check("str x0, [x1]\n", relaxed).ok);

  // LL/SC precedence: the llsc check fires before the (skipped) load
  // check, so an unguarded ldxr flips between kLlscDisallowed and
  // accepted purely on allow_llsc.
  EXPECT_TRUE(Check("ldxr x0, [x1]\n", relaxed).ok);
  auto r = Check("ldxr x0, [x1]\n", strict);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.kind, FailKind::kLlscDisallowed);

  // ldar is not LL/SC: stays accepted under strict (pure load).
  EXPECT_TRUE(Check("ldar x0, [x1]\n", strict).ok);
  // stlr is a store: still checked even with check_loads=false.
  EXPECT_FALSE(Check("stlr x0, [x1]\n", strict).ok);
}

TEST(VerifyOptionsMatrix, UncheckedLoadsStillEnforceRegisterInvariants) {
  VerifyOptions relaxed;
  relaxed.check_loads = false;

  // Writeback on a reserved base is a register invariant, not an access
  // check: still rejected.
  auto r = Check("ldr x0, [x18], #8\n", relaxed);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.kind, FailKind::kReservedWriteback);

  // Loading INTO a reserved register stays governed by the write rules.
  EXPECT_FALSE(Check("ldr x21, [x1]\n", relaxed).ok);
  EXPECT_FALSE(Check("ldr x22, [x1]\n", relaxed).ok);

  // A load whose writeback lands in x30 is still an x30-writing load:
  // legal only with the guard, even though the access is unchecked.
  auto wb = Check("ldr x0, [x30], #8\nnop\n", relaxed);
  EXPECT_FALSE(wb.ok);
  EXPECT_EQ(wb.kind, FailKind::kLinkRegProtocol);
  EXPECT_TRUE(
      Check("ldr x0, [x30], #8\nadd x30, x21, w30, uxtw\n", relaxed).ok);
  auto lr = Check("ldr x30, [x1], #8\nnop\n", relaxed);
  EXPECT_FALSE(lr.ok);
  EXPECT_EQ(lr.kind, FailKind::kLinkRegProtocol);
  EXPECT_TRUE(
      Check("ldr x30, [x1], #8\nadd x30, x21, w30, uxtw\n", relaxed).ok);
}

TEST(VerifyOptionsMatrix, ShrunkenOptionsComposeWithParallel) {
  // The option set must thread through the sharded driver unchanged.
  VerifyOptions opts;
  opts.check_loads = false;
  opts.allow_llsc = false;
  opts.guard_bytes = 4096;
  opts.table_bytes = 32;
  auto text = AssembleRaw("ldr x0, [x1]\nldr x1, [x21, #4088]\n"
                          "ldr x30, [x21, #24]\nblr x30\n");
  const VerifyResult serial = Verify(text, opts);
  EXPECT_TRUE(serial.ok) << serial.reason;
  for (unsigned n : {2u, 8u}) {
    const VerifyResult par = VerifyParallel(text, opts, n);
    EXPECT_EQ(par.ok, serial.ok);
  }
}

}  // namespace
}  // namespace lfi::verifier
