// Near-miss mutation regression corpus (satellite of the verify_model
// sweep): every distinct instruction word the rewriter emits across the
// synthetic workload pipeline is mutated one operand field at a time to
// its boundary values (arch::MutationValues), and the verifier's verdict
// for every mutant is snapshotted into a committed golden file. A change
// to the verifier that silently shifts the accept/reject boundary for
// any almost-legal encoding shows up as a golden diff.
//
// Regenerate after an intentional verifier change with:
//   LFI_UPDATE_GOLDEN=1 ./build/tests/verifier_mutation_test

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "arch/fields.h"
#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "rewriter/rewriter.h"
#include "verifier/verifier.h"
#include "workloads/workloads.h"

#ifndef LFI_MUTATION_GOLDEN
#error "build must define LFI_MUTATION_GOLDEN (path to the golden file)"
#endif

namespace lfi {
namespace {

// Distinct instruction words of every rewritten+assembled workload.
// (void so ASSERT_* can bail out.)
void CollectCorpus(std::vector<uint32_t>* out) {
  std::set<uint32_t> words;
  for (const auto& w : workloads::AllWorkloads()) {
    const std::string src = workloads::Generate(w.name, 500);
    ASSERT_FALSE(src.empty()) << w.name;
    auto parsed = asmtext::Parse(src);
    ASSERT_TRUE(parsed.ok()) << w.name << ": " << parsed.error();
    rewriter::RewriteOptions ropts;
    auto rewritten = rewriter::Rewrite(*parsed, ropts);
    ASSERT_TRUE(rewritten.ok()) << w.name << ": " << rewritten.error();
    asmtext::LayoutSpec spec;
    auto img = asmtext::Assemble(*rewritten, spec);
    ASSERT_TRUE(img.ok()) << w.name << ": " << img.error();
    const auto r = verifier::Verify(img->text);
    ASSERT_TRUE(r.ok) << w.name << " does not verify: " << r.reason;
    for (size_t off = 0; off + 4 <= img->text.size(); off += 4) {
      uint32_t word;
      std::memcpy(&word, img->text.data() + off, 4);
      words.insert(word);
    }
  }
  out->assign(words.begin(), words.end());
}

std::string VerdictOf(uint32_t word) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&word);
  const auto r = verifier::Verify({p, 4});
  return r.ok ? "ok" : verifier::FailKindName(r.kind);
}

// One line per (word, field): the base word's bare verdict plus the
// verdict of every boundary mutant of that field.
std::string Snapshot(const std::vector<uint32_t>& corpus) {
  std::ostringstream out;
  out << "# verifier near-miss mutation golden\n"
      << "# word=<hex> <class> <field> base=<verdict>: "
      << "<fieldvalue>=<verdict> ...\n";
  for (uint32_t word : corpus) {
    const arch::EncClassInfo* cls = arch::ClassifyWord(word);
    if (cls == nullptr) continue;  // data words embedded in text
    const std::string base = VerdictOf(word);
    for (const arch::EncField& f : cls->fields) {
      const uint32_t fmask = ((1u << f.width) - 1u) << f.lo;
      const uint32_t cur = (word & fmask) >> f.lo;
      std::ostringstream line;
      bool any = false;
      for (uint32_t v : arch::MutationValues(f)) {
        if (v == cur) continue;
        const uint32_t mutant = (word & ~fmask) | (v << f.lo);
        line << " " << v << "=" << VerdictOf(mutant);
        any = true;
      }
      if (!any) continue;
      char head[64];
      std::snprintf(head, sizeof(head), "word=%08X %s %s base=%s:", word,
                    cls->name, f.name, base.c_str());
      out << head << line.str() << "\n";
    }
  }
  return out.str();
}

TEST(VerifierMutation, GoldenVerdictSnapshot) {
  std::vector<uint32_t> corpus;
  CollectCorpus(&corpus);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_GT(corpus.size(), 50u) << "suspiciously small rewriter corpus";
  const std::string snapshot = Snapshot(corpus);

  const char* golden_path = LFI_MUTATION_GOLDEN;
  if (std::getenv("LFI_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << snapshot;
    std::printf("updated %s (%zu bytes)\n", golden_path, snapshot.size());
    return;
  }

  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << golden_path
      << "; regenerate with LFI_UPDATE_GOLDEN=1 " << std::flush;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();

  if (snapshot == golden) return;

  // Line-level diff so an intentional verifier change is reviewable.
  std::vector<std::string> want, got;
  for (std::istringstream s(golden); !s.eof();) {
    std::string l;
    if (std::getline(s, l)) want.push_back(l);
  }
  for (std::istringstream s(snapshot); !s.eof();) {
    std::string l;
    if (std::getline(s, l)) got.push_back(l);
  }
  size_t shown = 0;
  const size_t n = std::max(want.size(), got.size());
  for (size_t i = 0; i < n && shown < 20; ++i) {
    const std::string& a = i < want.size() ? want[i] : "<missing>";
    const std::string& b = i < got.size() ? got[i] : "<missing>";
    if (a != b) {
      ADD_FAILURE() << "golden line " << i + 1 << ":\n  golden: " << a
                    << "\n  actual: " << b;
      ++shown;
    }
  }
  FAIL() << "verifier mutation verdicts diverged from " << golden_path
         << " (" << want.size() << " -> " << got.size()
         << " lines); if intentional, regenerate with LFI_UPDATE_GOLDEN=1";
}

// The mutation tables themselves: every class field's mutation set is
// non-empty, in range, and includes at least one boundary value.
TEST(VerifierMutation, MutationValuesAreWellFormed) {
  for (const auto& cls : arch::AllEncClasses()) {
    for (const auto& f : cls.fields) {
      const auto vals = arch::MutationValues(f);
      EXPECT_FALSE(vals.empty()) << cls.name << "." << f.name;
      for (uint32_t v : vals) {
        EXPECT_LT(v, 1u << f.width) << cls.name << "." << f.name;
      }
    }
  }
}

}  // namespace
}  // namespace lfi
