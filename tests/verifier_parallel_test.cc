// VerifyParallel / VerifyBatch must be bit-identical to serial Verify():
// same verdict, FailKind, first-fail offset, and deterministic stats,
// regardless of thread count and shard boundaries. The context-sensitive
// rules (sp forward scan, x30 lookahead) are placed deliberately across
// shard boundaries of the parallel check pass.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "verifier/verifier.h"

namespace lfi::verifier {
namespace {

std::vector<uint8_t> AssembleRaw(const std::string& src) {
  auto f = asmtext::Parse(src);
  EXPECT_TRUE(f.ok()) << (f.ok() ? "" : f.error());
  asmtext::LayoutSpec spec;
  auto img = asmtext::Assemble(*f, spec);
  EXPECT_TRUE(img.ok()) << (img.ok() ? "" : img.error());
  return img.ok() ? img->text : std::vector<uint8_t>{};
}

// A module of `n` instructions: nops everywhere except the lines in
// `at` (index -> asm line). Large enough (>2048 insts) to engage the
// sharded path.
std::vector<uint8_t> BigModule(size_t n,
                               const std::vector<std::pair<size_t, std::string>>& at) {
  std::string src;
  src.reserve(n * 12);
  for (size_t i = 0; i < n; ++i) {
    std::string line = "nop";
    for (const auto& [idx, text] : at) {
      if (idx == i) line = text;
    }
    src += line;
    src += "\n";
  }
  return AssembleRaw(src);
}

void ExpectIdentical(const VerifyResult& serial, const VerifyResult& par,
                     const std::string& what) {
  EXPECT_EQ(par.ok, serial.ok) << what;
  EXPECT_EQ(par.kind, serial.kind) << what;
  EXPECT_EQ(par.fail_offset, serial.fail_offset) << what;
  EXPECT_EQ(par.reason, serial.reason) << what;
  EXPECT_EQ(par.insts_checked, serial.insts_checked) << what;
}

void ExpectStatsIdentical(const VerifyStats& serial, const VerifyStats& par,
                          const std::string& what) {
  EXPECT_EQ(par.calls, serial.calls) << what;
  EXPECT_EQ(par.insts_checked, serial.insts_checked) << what;
  EXPECT_EQ(par.fail_counts, serial.fail_counts) << what;
}

void CheckAllThreadCounts(std::span<const uint8_t> text,
                          const VerifyOptions& opts, const std::string& what) {
  VerifyStats sstats;
  const VerifyResult serial = Verify(text, opts, &sstats);
  for (unsigned nthreads : {1u, 2u, 3u, 8u}) {
    VerifyStats pstats;
    const VerifyResult par = VerifyParallel(text, opts, nthreads, &pstats);
    const std::string ctx = what + " nthreads=" + std::to_string(nthreads);
    ExpectIdentical(serial, par, ctx);
    ExpectStatsIdentical(sstats, pstats, ctx);
  }
}

TEST(VerifyParallel, IdenticalOnAcceptedModules) {
  for (size_t n : {1u, 7u, 2047u, 2048u, 2049u, 4096u}) {
    CheckAllThreadCounts(BigModule(n, {}), {},
                         "nop module n=" + std::to_string(n));
  }
}

TEST(VerifyParallel, IdenticalOnFailuresAtShardBoundaries) {
  // svc at various positions, including the first/last instruction of the
  // 2-shard split of a 4096-instruction module.
  for (size_t pos : {0u, 1u, 1023u, 1024u, 2047u, 2048u, 4095u}) {
    auto text = BigModule(4096, {{pos, "svc #0"}});
    CheckAllThreadCounts(text, {}, "svc at " + std::to_string(pos));
  }
}

TEST(VerifyParallel, FirstFailureWinsAcrossShards) {
  // Failures in different shards: the reported offset must be the FIRST
  // one, even though a later shard finds its failure earlier in wall time.
  auto text = BigModule(4096, {{100, "ldr x0, [x1]"}, {3000, "svc #0"}});
  VerifyStats st;
  const VerifyResult serial = Verify(text, {}, &st);
  EXPECT_FALSE(serial.ok);
  EXPECT_EQ(serial.fail_offset, 100u * 4);
  EXPECT_EQ(serial.kind, FailKind::kBadAddressingMode);
  CheckAllThreadCounts(text, {}, "two failures");
}

TEST(VerifyParallel, UndecodableReductionAcrossShards) {
  // Decode-pass failures must also reduce to the minimum offset.
  auto text = BigModule(4096, {});
  // Stamp undecodable words directly (the assembler cannot emit them).
  const uint32_t bad = 0;  // all-zero word is outside the allowlist
  std::memcpy(text.data() + 4 * 2500, &bad, 4);
  std::memcpy(text.data() + 4 * 2100, &bad, 4);
  const VerifyResult serial = Verify(text, {});
  EXPECT_FALSE(serial.ok);
  EXPECT_EQ(serial.kind, FailKind::kUndecodable);
  EXPECT_EQ(serial.fail_offset, 2100u * 4);
  CheckAllThreadCounts(text, {}, "undecodable words");
}

TEST(VerifyParallel, SpScanCrossesShardBoundary) {
  // sp adjust as the last instruction of shard 0, discharging sp access
  // as the first instruction of shard 1 (nthreads=2 splits 4096 at 2048).
  auto ok_text = BigModule(
      4096, {{2047, "sub sp, sp, #32"}, {2048, "str x0, [sp, #8]"}});
  EXPECT_TRUE(Verify(ok_text, {}).ok);
  CheckAllThreadCounts(ok_text, {}, "sp scan across boundary (ok)");

  // Same split, but a branch intervenes before the sp use: must reject at
  // the adjust, from every thread count.
  auto bad_text = BigModule(
      4096, {{2047, "sub sp, sp, #32"}, {2048, "ret"}});
  const VerifyResult serial = Verify(bad_text, {});
  EXPECT_FALSE(serial.ok);
  EXPECT_EQ(serial.kind, FailKind::kSpProtocol);
  EXPECT_EQ(serial.fail_offset, 2047u * 4);
  CheckAllThreadCounts(bad_text, {}, "sp scan across boundary (reject)");
}

TEST(VerifyParallel, LinkRegLookaheadCrossesShardBoundary) {
  // Table load at the shard-0/shard-1 boundary, blr on the other side.
  auto ok_text = BigModule(
      4096, {{2047, "ldr x30, [x21, #24]"}, {2048, "blr x30"}});
  EXPECT_TRUE(Verify(ok_text, {}).ok);
  CheckAllThreadCounts(ok_text, {}, "x30 lookahead across boundary (ok)");

  auto bad_text = BigModule(4096, {{2047, "ldr x30, [x21, #24]"}});
  const VerifyResult serial = Verify(bad_text, {});
  EXPECT_FALSE(serial.ok);
  EXPECT_EQ(serial.kind, FailKind::kLinkRegProtocol);
  EXPECT_EQ(serial.fail_offset, 2047u * 4);
  CheckAllThreadCounts(bad_text, {}, "x30 lookahead across boundary (reject)");
}

TEST(VerifyParallel, IdenticalUnderNonDefaultOptions) {
  VerifyOptions opts;
  opts.check_loads = false;
  opts.allow_llsc = false;
  opts.guard_bytes = 4096;
  opts.table_bytes = 32;
  auto text = BigModule(4096, {{10, "ldr x0, [x1]"},   // ok: loads unchecked
                               {3000, "ldxr x2, [x18]"}});  // llsc rejected
  const VerifyResult serial = Verify(text, opts);
  EXPECT_FALSE(serial.ok);
  EXPECT_EQ(serial.kind, FailKind::kLlscDisallowed);
  EXPECT_EQ(serial.fail_offset, 3000u * 4);
  CheckAllThreadCounts(text, opts, "non-default options");
}

TEST(VerifyParallel, OddSizedTextRejectedIdentically) {
  const std::vector<uint8_t> text = {1, 2, 3};
  CheckAllThreadCounts(text, {}, "odd-sized text");
}

TEST(VerifyParallel, RandomizedDifferential) {
  // Mostly-garbage instruction streams: decode-pass first-fail reduction
  // under adversarial content. Deterministic LCG, no external entropy.
  uint64_t s = 0x9E3779B97F4A7C15ull;
  auto next = [&s]() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>(s >> 32);
  };
  for (int round = 0; round < 20; ++round) {
    std::vector<uint8_t> text(4096 * 4);
    for (size_t i = 0; i < text.size() / 4; ++i) {
      // Bias half the words towards nop so some prefixes decode.
      uint32_t w = (next() & 1) ? 0xD503201Fu : next();
      std::memcpy(text.data() + i * 4, &w, 4);
    }
    CheckAllThreadCounts(text, {}, "random round " + std::to_string(round));
  }
}

TEST(VerifyBatch, MatchesIndividualVerify) {
  std::vector<std::vector<uint8_t>> owned;
  owned.push_back(AssembleRaw("add x18, x21, w1, uxtw\nldr x0, [x18]\nret\n"));
  owned.push_back(AssembleRaw("svc #0\n"));
  owned.push_back(BigModule(3000, {{1500, "br x1"}}));
  owned.push_back(AssembleRaw("nop\n"));
  owned.push_back({1, 2, 3});  // text-size failure
  owned.push_back(BigModule(2500, {}));

  std::vector<std::span<const uint8_t>> texts;
  for (const auto& t : owned) texts.emplace_back(t.data(), t.size());

  VerifyStats serial_stats;
  std::vector<VerifyResult> serial;
  for (const auto& t : texts) serial.push_back(Verify(t, {}, &serial_stats));

  for (unsigned nthreads : {1u, 2u, 3u, 8u}) {
    VerifyStats batch_stats;
    const auto batch = VerifyBatch(texts, {}, nthreads, &batch_stats);
    ASSERT_EQ(batch.size(), serial.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      ExpectIdentical(serial[i], batch[i],
                      "module " + std::to_string(i) + " nthreads=" +
                          std::to_string(nthreads));
    }
    ExpectStatsIdentical(serial_stats, batch_stats,
                         "batch stats nthreads=" + std::to_string(nthreads));
    // Batch stats are merged in module order: even the host-time float
    // sums must be reproducible across runs with the same thread count.
    VerifyStats again;
    VerifyBatch(texts, {}, nthreads, &again);
    EXPECT_EQ(again.fail_counts, batch_stats.fail_counts);
  }
}

}  // namespace
}  // namespace lfi::verifier
