// Adversarial verifier tests: every forbidden pattern from Section 5.2
// must be rejected, legal guard patterns accepted, and random word streams
// must never crash the verifier.

#include <gtest/gtest.h>

#include "arch/encode.h"
#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "verifier/verifier.h"

namespace lfi::verifier {
namespace {

// Assembles raw statements (no rewriting!) so tests can hand-craft both
// legal and hostile instruction sequences.
std::vector<uint8_t> AssembleRaw(const std::string& src) {
  auto f = asmtext::Parse(src);
  EXPECT_TRUE(f.ok()) << (f.ok() ? "" : f.error());
  asmtext::LayoutSpec spec;
  auto img = asmtext::Assemble(*f, spec);
  EXPECT_TRUE(img.ok()) << (img.ok() ? "" : img.error());
  return img.ok() ? img->text : std::vector<uint8_t>{};
}

VerifyResult Check(const std::string& src, VerifyOptions opts = {}) {
  auto text = AssembleRaw(src);
  return Verify({text.data(), text.size()}, opts);
}

TEST(Verifier, AcceptsMinimalSafeProgram) {
  auto r = Check(R"(
    add x18, x21, w1, uxtw
    ldr x0, [x18]
    str x0, [x21, w2, uxtw]
    ret
  )");
  EXPECT_TRUE(r.ok) << r.reason;
  EXPECT_EQ(r.kind, FailKind::kNone);
  EXPECT_EQ(r.insts_checked, 4u);
}

TEST(Verifier, AcceptsGuardedPatterns) {
  // Everything the rewriter emits must be accepted.
  EXPECT_TRUE(Check("add x18, x21, w5, uxtw\nbr x18\n").ok);
  EXPECT_TRUE(Check("add x30, x21, w5, uxtw\nret\n").ok);
  EXPECT_TRUE(Check("add x23, x21, w1, uxtw\nstp x2, x3, [x23, #16]\n").ok);
  EXPECT_TRUE(Check("add w22, w1, #16\nldr x0, [x21, w22, uxtw]\n").ok);
  EXPECT_TRUE(Check("mov w22, wsp\nadd sp, x21, x22\n").ok);
  EXPECT_TRUE(Check("str x0, [sp, #-16]!\nldr x0, [sp], #16\n").ok);
  EXPECT_TRUE(
      Check("ldp x29, x30, [sp], #32\nadd x30, x21, w30, uxtw\nret\n").ok);
  EXPECT_TRUE(Check("add x18, x21, w0, uxtw\nldxr x1, [x18]\n"
                    "stxr w2, x1, [x18]\n").ok);
}

TEST(Verifier, AcceptsRuntimeCallSequence) {
  EXPECT_TRUE(Check(R"(
    str x30, [sp, #-16]!
    ldr x30, [x21, #24]
    blr x30
    ldr x30, [sp], #16
    add x30, x21, w30, uxtw
  )").ok);
}

struct RejectCase {
  const char* name;
  const char* src;
  FailKind kind;
};

class RejectTest : public ::testing::TestWithParam<RejectCase> {};

TEST_P(RejectTest, HostilePatternRejected) {
  auto r = Check(GetParam().src);
  EXPECT_FALSE(r.ok) << GetParam().name << " was accepted";
  EXPECT_EQ(r.kind, GetParam().kind)
      << GetParam().name << " rejected as " << FailKindName(r.kind) << " ("
      << r.reason << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Hostile, RejectTest,
    ::testing::Values(
        // Unguarded memory accesses.
        RejectCase{"raw load", "ldr x0, [x1]\n",
                   FailKind::kBadAddressingMode},
        RejectCase{"raw store", "str x0, [x1]\n",
                   FailKind::kBadAddressingMode},
        RejectCase{"raw store imm", "str x0, [x1, #8]\n",
                   FailKind::kBadAddressingMode},
        RejectCase{"raw pair", "ldp x0, x1, [x2]\n",
                   FailKind::kBadAddressingMode},
        RejectCase{"raw exclusive", "ldxr x0, [x1]\n",
                   FailKind::kBadAddressingMode},
        RejectCase{"raw atomic release", "stlr x0, [x1]\n",
                   FailKind::kBadAddressingMode},
        // Bad register-offset modes.
        RejectCase{"lsl reg offset", "ldr x0, [x21, x1, lsl #3]\n",
                   FailKind::kBadAddressingMode},
        RejectCase{"sxtw reg offset", "ldr x0, [x21, w1, sxtw]\n",
                   FailKind::kBadAddressingMode},
        RejectCase{"uxtw off x18", "ldr x0, [x18, w1, uxtw]\n",
                   FailKind::kBadAddressingMode},
        RejectCase{"uxtw with shift", "ldr x0, [x21, w1, uxtw #3]\n",
                   FailKind::kBadAddressingMode},
        // Writes to reserved registers.
        RejectCase{"write x21", "add x21, x21, #1\n",
                   FailKind::kBaseRegWrite},
        RejectCase{"mov into x21", "mov x21, x0\n", FailKind::kBaseRegWrite},
        RejectCase{"load into x21", "ldr x21, [sp]\n",
                   FailKind::kBaseRegWrite},
        RejectCase{"write x18 plain", "add x18, x18, #1\n",
                   FailKind::kAddressRegWrite},
        RejectCase{"mov into x18", "mov x18, x0\n",
                   FailKind::kAddressRegWrite},
        RejectCase{"w-write to x18", "mov w18, w0\n",
                   FailKind::kAddressRegWrite},
        RejectCase{"load into x18", "ldr x18, [sp]\n",
                   FailKind::kAddressRegWrite},
        RejectCase{"guard-like sxtw", "add x18, x21, w0, sxtw\n",
                   FailKind::kAddressRegWrite},
        RejectCase{"guard-like shifted", "add x18, x21, w0, uxtw #2\n",
                   FailKind::kAddressRegWrite},
        RejectCase{"guard wrong base", "add x18, x0, w1, uxtw\n",
                   FailKind::kAddressRegWrite},
        RejectCase{"write x23", "mov x23, x0\n", FailKind::kAddressRegWrite},
        RejectCase{"write x24", "add x24, x24, #8\n",
                   FailKind::kAddressRegWrite},
        RejectCase{"64-bit write x22", "mov x22, x0\n",
                   FailKind::kScratchRegWrite},
        RejectCase{"load x22 64-bit", "ldr x22, [sp]\n",
                   FailKind::kScratchRegWrite},
        RejectCase{"sxtw into w22... as x", "sxtw x22, w0\n",
                   FailKind::kScratchRegWrite},
        // x30 violations.
        RejectCase{"mov into x30", "mov x30, x0\n",
                   FailKind::kLinkRegProtocol},
        RejectCase{"x30 load no guard", "ldr x30, [sp]\nret\n",
                   FailKind::kLinkRegProtocol},
        RejectCase{"x30 pair load no guard", "ldp x29, x30, [sp], #16\nret\n",
                   FailKind::kLinkRegProtocol},
        RejectCase{"table load no blr", "ldr x30, [x21, #24]\nret\n",
                   FailKind::kLinkRegProtocol},
        RejectCase{"table load too far", "ldr x30, [x21, #8192]\nblr x30\n",
                   FailKind::kLinkRegProtocol},
        // sp violations.
        RejectCase{"mov sp", "mov sp, x0\n", FailKind::kSpProtocol},
        RejectCase{"big sp sub", "sub sp, sp, #4096\nstr x0, [sp]\n",
                   FailKind::kSpProtocol},
        RejectCase{"sp sub no access", "sub sp, sp, #16\nret\n",
                   FailKind::kSpProtocol},
        RejectCase{"sp sub then branch", "sub sp, sp, #16\nb l\nl:\n"
                                         "str x0, [sp]\n",
                   FailKind::kSpProtocol},
        RejectCase{"sp guard wrong reg", "add sp, x21, x0\n",
                   FailKind::kSpProtocol},
        RejectCase{"sp from x21 imm", "add sp, x21, #8\n",
                   FailKind::kSpProtocol},
        // Indirect branches through arbitrary registers.
        RejectCase{"br raw", "br x0\n", FailKind::kUnguardedIndirectBranch},
        RejectCase{"blr raw", "blr x1\n",
                   FailKind::kUnguardedIndirectBranch},
        RejectCase{"ret raw", "ret x2\n",
                   FailKind::kUnguardedIndirectBranch},
        // System instructions.
        RejectCase{"svc", "svc #0\n", FailKind::kSystemInstruction},
        // Writeback on reserved base.
        RejectCase{"writeback x18", "add x18, x21, w0, uxtw\n"
                                    "ldr x0, [x18], #8\n",
                   FailKind::kReservedWriteback},
        RejectCase{"pre-index x23", "add x23, x21, w0, uxtw\n"
                                    "str x0, [x23, #16]!\n",
                   FailKind::kReservedWriteback}));

TEST(Verifier, RejectsUndecodableWords) {
  const std::vector<uint8_t> junk = {0xff, 0xff, 0xff, 0xff};
  auto r = Verify({junk.data(), junk.size()});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fail_offset, 0u);
  EXPECT_EQ(r.kind, FailKind::kUndecodable);
}

TEST(Verifier, RejectsUnalignedTextSize) {
  const std::vector<uint8_t> bytes = {0x1f, 0x20, 0x03};
  auto r = Verify({bytes.data(), bytes.size()});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.kind, FailKind::kTextSize);
}

TEST(Verifier, LlscRejectionHasStableKind) {
  VerifyOptions opts;
  opts.allow_llsc = false;
  auto r = Check("add x18, x21, w0, uxtw\nldxr x1, [x18]\n", opts);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.kind, FailKind::kLlscDisallowed);
}

TEST(Verifier, QRegisterOffsetCannotEscapeGuardRegion) {
  // ldr q0, [x18, #65520]: the scaled-imm12 encoding reaches past the
  // 48KiB guard region on 16-byte accesses; must be rejected.
  auto r = Check("add x18, x21, w0, uxtw\nldr q0, [x18, #65520]\n");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.kind, FailKind::kGuardRangeOverflow);
  // But a q access within the guard region is fine.
  EXPECT_TRUE(Check("add x18, x21, w0, uxtw\nldr q0, [x18, #32752]\n").ok);
}

TEST(Verifier, NoLoadsModeSkipsLoadChecksOnly) {
  VerifyOptions opts;
  opts.check_loads = false;
  // Raw loads pass; raw stores still fail.
  EXPECT_TRUE(Check("ldr x0, [x1]\n", opts).ok);
  EXPECT_TRUE(Check("ldp x0, x1, [x2, #16]\n", opts).ok);
  EXPECT_FALSE(Check("str x0, [x1]\n", opts).ok);
  // Loads into reserved registers still fail even without load checks.
  EXPECT_FALSE(Check("ldr x18, [x1]\n", opts).ok);
  EXPECT_FALSE(Check("ldr x30, [x1]\nret\n", opts).ok);
  // Load writeback that would corrupt a reserved base still fails.
  EXPECT_FALSE(Check("add x18, x21, w0, uxtw\nldr x0, [x18], #8\n",
                     opts).ok);
}

TEST(Verifier, SpAdjustFollowedByWritebackAccessIsAccepted) {
  // The access proves sp is in bounds regardless of which sp-based form
  // it uses.
  EXPECT_TRUE(Check("sub sp, sp, #64\nstr x0, [sp, #-16]!\n").ok);
}

TEST(Verifier, FuzzNeverCrashesAndAcceptedStreamsAreClean) {
  // Random word streams: the verifier must never crash; and any stream it
  // accepts must contain no undecodable words and no system instructions
  // (spot-check of the allowlist property).
  uint64_t state = 0xfeedface;
  int accepted = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<uint8_t> bytes;
    for (int k = 0; k < 16; ++k) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      const uint32_t w = static_cast<uint32_t>(state >> 32);
      bytes.push_back(w & 0xff);
      bytes.push_back((w >> 8) & 0xff);
      bytes.push_back((w >> 16) & 0xff);
      bytes.push_back((w >> 24) & 0xff);
    }
    auto r = Verify({bytes.data(), bytes.size()});
    if (r.ok) ++accepted;
  }
  // Random 32-bit words essentially never form a fully verifiable
  // 16-instruction program.
  EXPECT_EQ(accepted, 0);
}

TEST(Verifier, ThroughputIsMeasurable) {
  // Build a large legal program and make sure verification completes and
  // reports the right instruction count (used by the Section 5.2 bench).
  std::string src;
  for (int k = 0; k < 5000; ++k) {
    src += "add x18, x21, w1, uxtw\nldr x0, [x18]\nadd x0, x0, #1\n";
  }
  src += "ret\n";
  auto r = Check(src);
  EXPECT_TRUE(r.ok) << r.reason;
  EXPECT_EQ(r.insts_checked, 15001u);
}

}  // namespace
}  // namespace lfi::verifier
