// Model-based exhaustive verifier validation (docs/VERIFIER.md): the
// symbolic per-class effect model must agree with the real verifier on
// every swept encoding, the emulator must agree with the model's effect
// predictions on a stratified sample of accepted encodings, and — the
// meta-test — a deliberately seeded model bug must be caught by the
// sweep, proving the harness can actually detect disagreement.

#include <gtest/gtest.h>

#include <cstring>

#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "verify_model/crossval.h"
#include "verify_model/model.h"
#include "verify_model/sweep.h"

// Sanitizer builds run the interpreter-heavy sweep ~5x slower; thin the
// enumeration with a prime stride (coprime to every field radix, so all
// field regions stay covered).
#if defined(__SANITIZE_ADDRESS__)
#define LFI_VM_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LFI_VM_SANITIZED 1
#endif
#endif

namespace lfi::verify_model {
namespace {

using verifier::FailKind;

uint64_t SweepStride() {
#ifdef LFI_VM_SANITIZED
  return 7;
#else
  return 1;
#endif
}

std::vector<uint32_t> AssembleWords(const std::string& src) {
  auto f = asmtext::Parse(src);
  EXPECT_TRUE(f.ok()) << (f.ok() ? "" : f.error());
  asmtext::LayoutSpec spec;
  auto img = asmtext::Assemble(*f, spec);
  EXPECT_TRUE(img.ok()) << (img.ok() ? "" : img.error());
  std::vector<uint32_t> words;
  if (img.ok()) {
    words.resize(img->text.size() / 4);
    std::memcpy(words.data(), img->text.data(), words.size() * 4);
  }
  return words;
}

TEST(VerifyModel, ExhaustiveSweepMatchesVerifierOnEveryClass) {
  SweepOptions opts;
  opts.stride = SweepStride();
  const auto results = SweepAll(opts);
  ASSERT_EQ(results.size(), arch::AllEncClasses().size());
  uint64_t accepted = 0, checked = 0;
  for (const auto& r : results) {
    EXPECT_GT(r.checked, 0u) << r.class_name;
    EXPECT_EQ(r.mismatches, 0u)
        << r.class_name << ": "
        << (r.recorded.empty() ? "(none recorded)" : r.recorded[0].detail);
    accepted += r.accepted;
    checked += r.checked;
  }
  // The allowlist is not vacuous: millions of encodings checked, a
  // substantial accepted population, and samples collected everywhere.
  EXPECT_GT(checked, 1000000u);
  EXPECT_GT(accepted, 100000u);
}

TEST(VerifyModel, SweepCatchesSeededAddressRegModelBug) {
  // Seed a model bug: pretend every write to an address register is
  // legal (as if the model forgot the guard-only rule for x18/x23/x24).
  // The sweep must flag the disagreement with the real verifier.
  SweepOptions opts;
  opts.stride = 97;
  opts.model_override = [](const MFacts&, Verdict* v) {
    if (!v->ok && v->kind == FailKind::kAddressRegWrite) {
      v->ok = true;
      v->kind = FailKind::kNone;
    }
  };
  const auto* cls = arch::FindEncClass("addsub-shift");
  ASSERT_NE(cls, nullptr);
  const SweepResult r = SweepClass(*cls, opts);
  EXPECT_GT(r.mismatches, 0u)
      << "seeded model bug was not detected by the sweep";
}

TEST(VerifyModel, SweepCatchesSeededGuardRangeModelBug) {
  // Second seeded bug, in a different predicate family: the model
  // accepts out-of-range immediate offsets.
  SweepOptions opts;
  opts.stride = 13;
  opts.model_override = [](const MFacts&, Verdict* v) {
    if (!v->ok && v->kind == FailKind::kGuardRangeOverflow) {
      v->ok = true;
      v->kind = FailKind::kNone;
    }
  };
  const auto* cls = arch::FindEncClass("ls-uimm");
  ASSERT_NE(cls, nullptr);
  const SweepResult r = SweepClass(*cls, opts);
  EXPECT_GT(r.mismatches, 0u)
      << "seeded model bug was not detected by the sweep";
}

TEST(VerifyModel, EmulatorAgreesWithEffectPredictions) {
  SweepOptions opts;
  opts.stride = 101;
  opts.sample_per_class = 32;
  const auto sweeps = SweepAll(opts);
  const CrossvalResult cv = CrossValidate(sweeps);
  EXPECT_GT(cv.executed, 300u);
  EXPECT_GT(cv.branches, 0u);
  for (const auto& f : cv.failures) {
    ADD_FAILURE() << f.class_name << " word 0x" << std::hex << f.word
                  << std::dec << ": " << f.detail;
  }
}

TEST(VerifyModel, PredictVerdictMatchesVerifyOnCuratedSequences) {
  const verifier::VerifyOptions vopts;
  const std::vector<std::string> programs = {
      // Legal guard patterns.
      "add x18, x21, w1, uxtw\nldr x0, [x18]\nret\n",
      "add x30, x21, w5, uxtw\nret\n",
      "mov w22, w1\nadd sp, x21, x22\n",
      "ldr x30, [x21, #24]\nblr x30\n",
      "sub sp, sp, #32\nstr x0, [sp, #8]\n",
      // Context violations.
      "ldr x30, [x21, #24]\nnop\n",
      "sub sp, sp, #32\nret\n",
      "add sp, sp, #16\nadd sp, sp, #16\nstr x0, [sp]\n",
      // Plain rejections.
      "ldr x0, [x1]\n",
      "add x21, x0, #1\n",
      "mov x22, x0\n",
      "br x1\n",
      "svc #0\n",
  };
  for (const std::string& src : programs) {
    const std::vector<uint32_t> words = AssembleWords(src);
    ASSERT_FALSE(words.empty()) << src;
    std::vector<uint8_t> bytes(words.size() * 4);
    std::memcpy(bytes.data(), words.data(), bytes.size());
    const verifier::VerifyResult real = verifier::Verify(bytes, vopts);
    const Verdict model =
        PredictVerdict(std::span<const uint32_t>(words), vopts);
    EXPECT_EQ(model.ok, real.ok) << src;
    if (!real.ok && !model.ok) {
      EXPECT_EQ(model.kind, real.kind) << src;
      EXPECT_EQ(model.fail_index * 4, real.fail_offset) << src;
    }
  }
}

TEST(VerifyModel, ExtractFactsSeesGuardShapes) {
  const std::vector<uint32_t> words = AssembleWords(
      "add x18, x21, w1, uxtw\n"
      "add sp, x21, x22\n"
      "add sp, sp, #48\n"
      "ldr x30, [x21, #16]\n");
  ASSERT_EQ(words.size(), 4u);

  const MFacts guard = ExtractFacts(words[0]);
  EXPECT_TRUE(guard.decodable);
  EXPECT_EQ(guard.guard_for, 18);
  EXPECT_EQ(guard.guard_rm, 1);

  const MFacts spg = ExtractFacts(words[1]);
  EXPECT_TRUE(spg.sp_guard);

  const MFacts adj = ExtractFacts(words[2]);
  EXPECT_TRUE(adj.sp_small_adjust);
  EXPECT_EQ(adj.adjust, 48);

  const MFacts tl = ExtractFacts(words[3]);
  EXPECT_TRUE(tl.plain_int_ldr);
  EXPECT_EQ(tl.rt, 30);
  EXPECT_EQ(tl.base, 21);
  const auto suffix = DischargeSuffix(tl, {});
  ASSERT_EQ(suffix.size(), 1u);
  EXPECT_EQ(suffix[0], 0xD63F03C0u);  // blr x30
}

TEST(VerifyModel, DischargeSuffixesAreStandaloneLegal) {
  // The sweep's rejection-anchoring argument requires every suffix word
  // to be accepted by itself.
  for (uint32_t w : {0xD63F03C0u,                          // blr x30
                     0x8B200000u | (1u << 16) | (2u << 13) |
                         (21u << 5) | 30u,                 // x30 guard
                     0xF90003FFu}) {                       // str xzr, [sp]
    const uint8_t* p = reinterpret_cast<const uint8_t*>(&w);
    const auto r = verifier::Verify({p, 4}, {});
    EXPECT_TRUE(r.ok) << std::hex << w << ": " << r.reason;
  }
}

}  // namespace
}  // namespace lfi::verify_model
