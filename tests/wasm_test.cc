// Wasm-baseline instrumentation tests: semantic preservation across all
// engine models, and sanity on the overhead ordering.

#include <gtest/gtest.h>

#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "pipeline_util.h"
#include "runtime/runtime.h"
#include "wasm/wasm.h"
#include "workloads/workloads.h"

namespace lfi::wasm {
namespace {

// Builds a wasm-instrumented ELF (instrument, expand rtcalls, assemble).
Result<std::vector<uint8_t>> BuildWasmElf(const std::string& src,
                                          Engine engine) {
  auto file = asmtext::Parse(src);
  if (!file) return Error{file.error()};
  auto instrumented = Instrument(*file, engine);
  if (!instrumented) return Error{instrumented.error()};
  rewriter::RewriteOptions opts;
  opts.insert_guards = false;  // wasm engines have no machine-code verifier
  auto expanded = rewriter::Rewrite(*instrumented, opts);
  if (!expanded) return Error{expanded.error()};
  asmtext::LayoutSpec spec;
  spec.text_offset = runtime::kProgramStart;
  auto img = asmtext::Assemble(*expanded, spec);
  if (!img) return Error{img.error()};
  return elf::Write(elf::FromAssembled(*img));
}

struct RunResult {
  int status = -1000;
  uint64_t cycles = 0;
};

RunResult RunElf(const std::vector<uint8_t>& bytes) {
  runtime::RuntimeConfig cfg;
  cfg.core = arch::AppleM1LikeParams();
  cfg.enforce_verification = false;
  runtime::Runtime rt(cfg);
  auto pid = rt.Load({bytes.data(), bytes.size()});
  if (!pid.ok()) {
    ADD_FAILURE() << pid.error();
    return {};
  }
  rt.RunUntilIdle(uint64_t{300} * 1000 * 1000);
  RunResult r;
  const auto* p = rt.proc(*pid);
  if (p->exit_kind != runtime::ExitKind::kExited) {
    ADD_FAILURE() << "killed: " << p->fault_detail;
    return {};
  }
  r.status = p->exit_status;
  r.cycles = rt.Cycles();
  return r;
}

class WasmEngineTest : public ::testing::TestWithParam<Engine> {};

TEST_P(WasmEngineTest, PreservesWorkloadSemantics) {
  for (const auto& w : workloads::AllWorkloads()) {
    if (!w.wasm_compatible) continue;
    const std::string src = workloads::Generate(w.name, 150000);
    auto native = test::BuildElf(src, true, [] {
      rewriter::RewriteOptions o;
      o.insert_guards = false;
      return o;
    }());
    ASSERT_TRUE(native.ok()) << native.error();
    auto wasmed = BuildWasmElf(src, GetParam());
    ASSERT_TRUE(wasmed.ok()) << w.name << ": " << wasmed.error();
    const RunResult n = RunElf(*native);
    const RunResult ws = RunElf(*wasmed);
    EXPECT_EQ(ws.status, n.status) << w.name;
    // Sandboxing never speeds a program up.
    EXPECT_GE(ws.cycles, n.cycles) << w.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, WasmEngineTest,
                         ::testing::Values(Engine::kWasmtime, Engine::kWasm2c,
                                           Engine::kWasm2cNoBarrier,
                                           Engine::kWasm2cPinnedReg,
                                           Engine::kWamr),
                         [](const ::testing::TestParamInfo<Engine>& info) {
                           std::string n = EngineName(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Wasm, BarrierCostsMoreThanNoBarrier) {
  // namd has several accesses per basic block, so hoisting the base load
  // (no-barrier) saves real work; mcf-style single-access blocks would
  // show no difference.
  const std::string src = workloads::Generate("508.namd", 200000);
  auto barrier = BuildWasmElf(src, Engine::kWasm2c);
  auto nobarrier = BuildWasmElf(src, Engine::kWasm2cNoBarrier);
  ASSERT_TRUE(barrier.ok() && nobarrier.ok());
  EXPECT_GT(RunElf(*barrier).cycles, RunElf(*nobarrier).cycles);
}

TEST(Wasm, PinnedRegisterBeatsContextLoads) {
  const std::string src = workloads::Generate("519.lbm", 200000);
  auto pinned = BuildWasmElf(src, Engine::kWasm2cPinnedReg);
  auto ctx = BuildWasmElf(src, Engine::kWasm2c);
  ASSERT_TRUE(pinned.ok() && ctx.ok());
  EXPECT_LT(RunElf(*pinned).cycles, RunElf(*ctx).cycles);
}

TEST(Wasm, RejectsProgramsUsingModelRegisters) {
  auto f = asmtext::Parse("mov x25, #1\nret\n");
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(Instrument(*f, Engine::kWamr).ok());
}

}  // namespace
}  // namespace lfi::wasm
