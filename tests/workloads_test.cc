// Workload semantic-preservation tests.
//
// Each synthetic SPEC stand-in runs (a) natively (no guards) and (b) under
// every LFI configuration. The exit status is a data-dependent checksum,
// so any rewriting bug that changes program behaviour - a mis-rebased
// offset, a clobbered register, a wrong addressing-mode split - shows up
// as a status mismatch. Rewritten binaries must also pass the verifier
// (enforced automatically by the loader).

#include <gtest/gtest.h>

#include "pipeline_util.h"
#include "runtime/runtime.h"
#include "workloads/workloads.h"

namespace lfi::workloads {
namespace {

constexpr uint64_t kScale = 300000;

runtime::RuntimeConfig Config(bool verify) {
  runtime::RuntimeConfig cfg;
  cfg.core = arch::AppleM1LikeParams();
  cfg.enforce_verification = verify;
  return cfg;
}

// Runs `src` under the given rewrite options; returns the exit status or
// -1000 on error.
int RunStatus(const std::string& src, bool guards,
              rewriter::OptLevel level = rewriter::OptLevel::kO2,
              bool sandbox_loads = true) {
  rewriter::RewriteOptions opts;
  opts.insert_guards = guards;
  opts.level = level;
  opts.sandbox_loads = sandbox_loads;
  auto elf_bytes = test::BuildElf(src, /*rewrite=*/true, opts);
  if (!elf_bytes.ok()) {
    ADD_FAILURE() << elf_bytes.error();
    return -1000;
  }
  // Native (guard-free) binaries cannot verify; sandbox_loads=false
  // binaries verify with load checks off.
  runtime::Runtime rt(Config(false));
  auto pid = rt.Load({elf_bytes->data(), elf_bytes->size()});
  if (!pid.ok()) {
    ADD_FAILURE() << pid.error();
    return -1000;
  }
  rt.RunUntilIdle(uint64_t{200} * 1000 * 1000);
  const runtime::Proc* p = rt.proc(*pid);
  if (p->exit_kind != runtime::ExitKind::kExited) {
    ADD_FAILURE() << "killed: " << p->fault_detail;
    return -1000;
  }
  return p->exit_status;
}

class WorkloadTest : public ::testing::TestWithParam<WorkloadInfo> {};

TEST_P(WorkloadTest, AllConfigsPreserveSemantics) {
  const std::string src = Generate(GetParam().name, kScale);
  ASSERT_FALSE(src.empty());
  const int native = RunStatus(src, /*guards=*/false);
  ASSERT_NE(native, -1000);
  EXPECT_EQ(RunStatus(src, true, rewriter::OptLevel::kO0), native) << "O0";
  EXPECT_EQ(RunStatus(src, true, rewriter::OptLevel::kO1), native) << "O1";
  EXPECT_EQ(RunStatus(src, true, rewriter::OptLevel::kO2), native) << "O2";
  EXPECT_EQ(RunStatus(src, true, rewriter::OptLevel::kO2, false), native)
      << "no-loads";
}

TEST_P(WorkloadTest, RewrittenBinaryVerifies) {
  const std::string src = Generate(GetParam().name, 50000);
  rewriter::RewriteOptions opts;
  auto elf_bytes = test::BuildElf(src, true, opts);
  ASSERT_TRUE(elf_bytes.ok()) << elf_bytes.error();
  runtime::Runtime rt(Config(true));  // verification enforced
  auto pid = rt.Load({elf_bytes->data(), elf_bytes->size()});
  EXPECT_TRUE(pid.ok()) << (pid.ok() ? "" : pid.error());
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadTest, ::testing::ValuesIn(AllWorkloads()),
    [](const ::testing::TestParamInfo<WorkloadInfo>& info) {
      std::string n = info.param.name;
      for (char& c : n) {
        if (c == '.') c = '_';
      }
      return n;
    });

TEST(Workloads, SevenAreWasmCompatible) {
  int n = 0;
  for (const auto& w : AllWorkloads()) n += w.wasm_compatible;
  EXPECT_EQ(n, 7);
}

}  // namespace
}  // namespace lfi::workloads
