#!/usr/bin/env python3
"""Compare a bench --json run against the committed baseline.

The benchmarks run on a deterministic simulator, so cycle counts are
exact and machine-independent: any drift beyond the tolerance is a real
behavior change in the rewriter, verifier, runtime, or cost model -- not
noise. Usage:

    bench_coremark --json current.json
    bench_table5_microbench --json current.json   # merges into same file
    tools/check_bench_regression.py BENCH_BASELINE.json current.json

Only `.cycles`, `.bytes`, and `.exact` metrics gate. The first two are
exact under the deterministic simulator but tolerate small drift (a
changed workload mix legitimately moves them); `.exact` metrics are
pass/fail facts (e.g. "sharded verify was bit-identical to serial") and
gate with ZERO tolerance, ignoring --tolerance. Derived metrics like
overhead_pct, ns, and Minsts/s rates are reported but never fail the
check, since they either amplify small cycle deltas or depend on the
host machine. Exit status is 0 unless --strict is given and a gated
metric moved by more than its tolerance.

One class of failure is loud even without --strict: a metric present in
the baseline but absent from the run. A silently vanished metric usually
means a bench section stopped running (or a metric was renamed without
regenerating BENCH_BASELINE.json), and "report only" mode must not let
that rot — exit status is 2 whenever baseline coverage is lost.
"""

import argparse
import json
import sys

DEFAULT_TOLERANCE_PCT = 10.0


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if not isinstance(data, dict):
        sys.exit(f"error: {path}: expected a flat JSON object")
    return {k: float(v) for k, v in data.items()
            if isinstance(v, (int, float))}


def fmt(value):
    if value == int(value) and abs(value) >= 1000:
        return f"{int(value):,}"
    return f"{value:.2f}"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed BENCH_BASELINE.json")
    ap.add_argument("current", help="json from this run's benches")
    ap.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE_PCT,
                    help="allowed +/- %% drift on .cycles/.bytes metrics "
                         "(default %(default)s; .exact metrics always "
                         "gate at zero)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 on regressions (default: report only)")
    ap.add_argument("--markdown", metavar="PATH",
                    help="also write the report as a markdown table")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    rows = []          # (metric, base, cur, delta_pct, flag)
    regressions = []
    missing = []
    for metric in sorted(set(base) | set(cur)):
        b, c = base.get(metric), cur.get(metric)
        if b is None:
            rows.append((metric, None, c, None, "new"))
            continue
        if c is None:
            rows.append((metric, b, None, None, "missing"))
            missing.append(metric)
            continue
        delta = 0.0 if b == c else (100.0 * (c - b) / b if b else float("inf"))
        if metric.endswith(".exact"):
            ok = b == c
        else:
            gated = metric.endswith((".cycles", ".bytes"))
            ok = not gated or abs(delta) <= args.tolerance
        rows.append((metric, b, c, delta, "ok" if ok else "REGRESSION"))
        if not ok:
            regressions.append(metric)

    header = (f"bench regression check: tolerance +/-{args.tolerance:g}% "
              f"on .cycles/.bytes metrics")
    lines_md = [f"### {header}", "",
                "| metric | baseline | current | delta | |",
                "|---|---:|---:|---:|---|"]
    print(header)
    for metric, b, c, delta, flag in rows:
        bs = fmt(b) if b is not None else "-"
        cs = fmt(c) if c is not None else "-"
        ds = f"{delta:+.2f}%" if delta is not None else "-"
        mark = {"ok": "", "new": "(new)", "missing": "(missing!)",
                "REGRESSION": "<-- REGRESSION"}[flag]
        print(f"  {metric:<42} {bs:>14} -> {cs:>14}  {ds:>8} {mark}")
        md_mark = {"ok": "", "new": "new", "missing": ":warning: missing",
                   "REGRESSION": ":x: **regression**"}[flag]
        lines_md.append(f"| `{metric}` | {bs} | {cs} | {ds} | {md_mark} |")

    verdicts = []
    if missing:
        verdicts.append(f"{len(missing)} baseline metric(s) MISSING from "
                        f"the run: " + ", ".join(missing))
    if regressions:
        verdicts.append(f"{len(regressions)} metric(s) outside tolerance: "
                        + ", ".join(regressions))
    if not verdicts:
        verdicts.append("all gated metrics within tolerance")
    for verdict in verdicts:
        print(verdict)
    lines_md += [""] + verdicts

    if args.markdown:
        with open(args.markdown, "w") as f:
            f.write("\n".join(lines_md) + "\n")

    if missing:
        # Lost baseline coverage fails even in report-only mode: a bench
        # section that silently stopped emitting a metric is exactly the
        # failure "report only" must not hide.
        return 2
    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
