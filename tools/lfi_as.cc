// lfi-as: assembles (rewritten) LFI assembly into a sandbox ELF.
//
// Usage: lfi-as in.s out.elf

#include <cstdio>
#include <fstream>
#include <sstream>

#include "asmtext/assemble.h"
#include "asmtext/parser.h"
#include "elf/elf.h"
#include "runtime/layout.h"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: lfi-as in.s out.elf\n");
    return 1;
  }
  std::ifstream f(argv[1]);
  if (!f) {
    std::fprintf(stderr, "lfi-as: cannot open %s\n", argv[1]);
    return 1;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  auto file = lfi::asmtext::Parse(ss.str());
  if (!file) {
    std::fprintf(stderr, "lfi-as: %s\n", file.error().c_str());
    return 1;
  }
  lfi::asmtext::LayoutSpec spec;
  spec.text_offset = lfi::runtime::kProgramStart;
  auto img = lfi::asmtext::Assemble(*file, spec);
  if (!img) {
    std::fprintf(stderr, "lfi-as: %s\n", img.error().c_str());
    return 1;
  }
  const auto elf_bytes = lfi::elf::Write(lfi::elf::FromAssembled(*img));
  std::ofstream out(argv[2], std::ios::binary);
  out.write(reinterpret_cast<const char*>(elf_bytes.data()),
            static_cast<std::streamsize>(elf_bytes.size()));
  std::fprintf(stderr, "lfi-as: wrote %zu bytes (%zu text)\n",
               elf_bytes.size(), img->text.size());
  return 0;
}
