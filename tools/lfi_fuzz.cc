// lfi-fuzz: sandbox-escape soundness fuzzer (docs/FUZZING.md).
//
// Closes the verifier-emulator loop: generated and mutated instruction
// streams go through the static verifier, and everything the verifier
// accepts executes under the slot-invariant checker, which convicts any
// access, branch target, or reserved-register value that leaves the
// sandbox. Also runs completeness fuzzing (rewriter output must verify)
// and differential fuzzing (block vs. step dispatch must agree), a
// chained differential (the optimized chained backend vs. the reference
// block loop, hook-free so the optimized loop actually runs), plus a
// snapshot oracle (run N, checkpoint, run M, restore, re-run M; the two
// M-phases must match in registers, retired count, and access trace).
//
// Usage:
//   lfi_fuzz [--mode=soundness|completeness|differential|chained|
//             snapshot|embed|all]
//            [--iters=N] [--seed=N|string] [--max-insts=N]
//            [--artifact-dir=DIR] [--replay FILE...]
//
// A string seed (e.g. --seed=ci) is FNV-1a hashed. Exit status: 0 clean,
// 1 if any mode found a crash, 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "embed/embed_fuzz.h"
#include "fuzz/fuzz.h"
#include "fuzz/gen.h"

namespace {

uint64_t ParseSeed(const char* s) {
  char* end = nullptr;
  const unsigned long long v = strtoull(s, &end, 0);
  if (end != s && *end == '\0') return v;
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (const char* p = s; *p != '\0'; ++p) {
    h = (h ^ static_cast<uint8_t>(*p)) * 1099511628211ULL;
  }
  return h;
}

void PrintReport(const lfi::fuzz::FuzzReport& r) {
  std::printf("%-13s %llu iters: %llu rejected, %llu accepted, "
              "%llu executed, %zu crashes\n",
              r.mode.c_str(), static_cast<unsigned long long>(r.iters),
              static_cast<unsigned long long>(r.rejected),
              static_cast<unsigned long long>(r.accepted),
              static_cast<unsigned long long>(r.executed), r.crashes.size());
  const std::string hist = lfi::fuzz::RejectHistogram(r);
  if (!hist.empty()) std::printf("  reject kinds: %s\n", hist.c_str());
  for (const auto& c : r.crashes) {
    std::printf("  CRASH iter=%llu seed=0x%llx: %s\n",
                static_cast<unsigned long long>(c.iter),
                static_cast<unsigned long long>(c.seed), c.detail.c_str());
    if (!c.path.empty()) std::printf("    artifact: %s\n", c.path.c_str());
  }
}

// Replays a crash artifact: re-verifies and re-executes its `words:` line
// (or re-runs the pipeline on its `source:` block).
int Replay(const char* path, const lfi::fuzz::FuzzOptions& opts) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "lfi_fuzz: cannot open %s\n", path);
    return 2;
  }
  std::vector<uint32_t> words;
  std::string source;
  std::string line;
  bool in_source = false;
  while (std::getline(f, line)) {
    if (line.rfind("words:", 0) == 0) {
      const char* p = line.c_str() + 6;
      char* end = nullptr;
      for (;;) {
        const unsigned long long w = strtoull(p, &end, 16);
        if (end == p) break;
        words.push_back(static_cast<uint32_t>(w));
        p = end;
      }
      in_source = false;
    } else if (line.rfind("source:", 0) == 0) {
      in_source = true;
    } else if (in_source && line.rfind("  ", 0) == 0) {
      source += line.substr(2) + "\n";
    } else {
      in_source = false;
    }
  }
  int rc = 0;
  if (!words.empty()) {
    const auto v = lfi::verifier::Verify(
        {reinterpret_cast<const uint8_t*>(words.data()), words.size() * 4},
        opts.verify);
    if (!v.ok) {
      std::printf("%s: verifier now REJECTS (%s: %s) -- fixed\n", path,
                  lfi::verifier::FailKindName(v.kind), v.reason.c_str());
      return 0;
    }
    lfi::fuzz::ExecOptions eo;
    eo.seed = opts.seed;
    eo.max_insts = opts.max_exec_insts;
    eo.guard_bytes = opts.verify.guard_bytes;
    eo.table_bytes = opts.verify.table_bytes;
    const auto res = lfi::fuzz::ExecuteWords(words, eo);
    if (res.violation.empty()) {
      std::printf("%s: accepted and executes clean\n", path);
    } else {
      std::printf("%s: STILL ESCAPES: %s\n", path, res.violation.c_str());
      rc = 1;
    }
  }
  if (!source.empty()) {
    // Completeness artifacts replay through a 1-iteration corpus run by
    // reusing the recorded seed for the pipeline options.
    std::printf("%s: replaying source through the pipeline is not seeded "
                "here; run the smoke tests instead\n",
                path);
  }
  if (words.empty() && source.empty()) {
    std::fprintf(stderr, "lfi_fuzz: %s has no words:/source: section\n", path);
    return 2;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "all";
  lfi::fuzz::FuzzOptions opts;
  opts.seed = 1;
  opts.iters = 10000;
  std::vector<const char*> replays;
  for (int k = 1; k < argc; ++k) {
    const char* a = argv[k];
    if (std::strncmp(a, "--mode=", 7) == 0) {
      mode = a + 7;
    } else if (std::strncmp(a, "--iters=", 8) == 0) {
      opts.iters = strtoull(a + 8, nullptr, 0);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      opts.seed = ParseSeed(a + 7);
    } else if (std::strncmp(a, "--max-insts=", 12) == 0) {
      opts.max_exec_insts = strtoull(a + 12, nullptr, 0);
    } else if (std::strncmp(a, "--artifact-dir=", 15) == 0) {
      opts.artifact_dir = a + 15;
    } else if (std::strcmp(a, "--replay") == 0) {
      while (k + 1 < argc) replays.push_back(argv[++k]);
    } else {
      std::fprintf(stderr,
                   "usage: lfi_fuzz [--mode=soundness|completeness|"
                   "differential|chained|snapshot|embed|all] [--iters=N] "
                   "[--seed=N|string]\n"
                   "                [--max-insts=N] [--artifact-dir=DIR] "
                   "[--replay FILE...]\n");
      return 2;
    }
  }
  if (!replays.empty()) {
    int rc = 0;
    for (const char* p : replays) {
      const int r = Replay(p, opts);
      if (r > rc) rc = r;
    }
    return rc;
  }

  bool crashed = false;
  if (mode == "soundness" || mode == "all") {
    const auto r = lfi::fuzz::RunSoundness(opts);
    PrintReport(r);
    crashed = crashed || !r.ok();
  }
  if (mode == "completeness" || mode == "all") {
    // Assembly programs are ~100x more expensive per iteration than word
    // streams; scale the count so --iters stays one wall-clock knob.
    lfi::fuzz::FuzzOptions co = opts;
    co.iters = opts.iters / 50 + 1;
    const auto r = lfi::fuzz::RunCompleteness(co);
    PrintReport(r);
    crashed = crashed || !r.ok();
  }
  if (mode == "differential" || mode == "all") {
    lfi::fuzz::FuzzOptions d = opts;
    d.iters = opts.iters / 2 + 1;
    const auto r = lfi::fuzz::RunDifferential(d);
    PrintReport(r);
    crashed = crashed || !r.ok();
  }
  if (mode == "chained" || mode == "all") {
    lfi::fuzz::FuzzOptions c = opts;
    c.iters = opts.iters / 2 + 1;
    const auto r = lfi::fuzz::RunChainedDifferential(c);
    PrintReport(r);
    crashed = crashed || !r.ok();
  }
  if (mode == "snapshot" || mode == "all") {
    lfi::fuzz::FuzzOptions s = opts;
    s.iters = opts.iters / 2 + 1;
    const auto r = lfi::fuzz::RunSnapshotOracle(s);
    PrintReport(r);
    crashed = crashed || !r.ok();
  }
  if (mode == "embed" || mode == "all") {
    // Each iteration is a full typed call (often with callbacks); scale
    // like the other pipeline-heavy modes.
    lfi::fuzz::FuzzOptions e = opts;
    e.iters = opts.iters / 10 + 1;
    const auto r = lfi::embed::RunEmbedFuzz(e);
    PrintReport(r);
    crashed = crashed || !r.ok();
  }
  if (mode != "soundness" && mode != "completeness" && mode != "differential" &&
      mode != "chained" && mode != "snapshot" && mode != "embed" &&
      mode != "all") {
    std::fprintf(stderr, "lfi_fuzz: unknown mode '%s'\n", mode.c_str());
    return 2;
  }
  return crashed ? 1 : 0;
}
