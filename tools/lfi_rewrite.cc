// lfi-rewrite: the assembly-transformation tool (Section 5.1).
//
// Reads GNU ARM64 assembly text, inserts LFI guards, and writes the
// transformed assembly. This is the pass that the paper's lfi-clang
// wrapper interposes between the compiler and the assembler.
//
// Usage: lfi-rewrite [-O0|-O1|-O2] [--no-loads] [--stats] [in.s [out.s]]
//        (stdin/stdout when files are omitted)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "asmtext/parser.h"
#include "asmtext/printer.h"
#include "rewriter/rewriter.h"

int main(int argc, char** argv) {
  lfi::rewriter::RewriteOptions opts;
  bool print_stats = false;
  std::string in_path, out_path;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg == "-O0") {
      opts.level = lfi::rewriter::OptLevel::kO0;
    } else if (arg == "-O1") {
      opts.level = lfi::rewriter::OptLevel::kO1;
    } else if (arg == "-O2") {
      opts.level = lfi::rewriter::OptLevel::kO2;
    } else if (arg == "--no-loads") {
      opts.sandbox_loads = false;
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: lfi-rewrite [-O0|-O1|-O2] [--no-loads] "
                   "[--stats] [in.s [out.s]]\n");
      return 0;
    } else if (in_path.empty()) {
      in_path = arg;
    } else {
      out_path = arg;
    }
  }

  std::string source;
  if (in_path.empty()) {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  } else {
    std::ifstream f(in_path);
    if (!f) {
      std::fprintf(stderr, "lfi-rewrite: cannot open %s\n", in_path.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    source = ss.str();
  }

  auto file = lfi::asmtext::Parse(source);
  if (!file) {
    std::fprintf(stderr, "lfi-rewrite: %s\n", file.error().c_str());
    return 1;
  }
  lfi::rewriter::RewriteStats stats;
  auto rewritten = lfi::rewriter::Rewrite(*file, opts, &stats);
  if (!rewritten) {
    std::fprintf(stderr, "lfi-rewrite: %s\n", rewritten.error().c_str());
    return 1;
  }
  const std::string out = lfi::asmtext::Print(*rewritten);
  if (out_path.empty()) {
    std::fwrite(out.data(), 1, out.size(), stdout);
  } else {
    std::ofstream f(out_path);
    f << out;
  }
  if (print_stats) {
    std::fprintf(stderr,
                 "lfi-rewrite: %zu -> %zu instructions (%zu guards, "
                 "%zu hoisted, %zu sp-elided, %zu tbz rewritten)\n",
                 stats.input_insts, stats.output_insts,
                 stats.guards_inserted, stats.guards_hoisted,
                 stats.guards_elided_sp, stats.tbz_rewritten);
  }
  return 0;
}
