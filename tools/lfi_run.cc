// lfi-run: loads one or more LFI ELF executables into sandboxes and runs
// them to completion under the runtime (Section 5.3). Prints each
// sandbox's captured output and exit status.
//
// Observability (docs/OBSERVABILITY.md):
//   --stats        per-sandbox counter table + verifier stats on stderr
//   --trace FILE   Chrome trace_event JSON (open in Perfetto or
//                  chrome://tracing); timestamps come from the simulated
//                  clock, so identical runs produce byte-identical files
//
// Fault policy and limits (docs/FAULTS.md):
//   --policy=kill|signal|restart   fault policy for every sandbox
//   --restart-budget=N             restarts before degrading to kill
//   --max-cycles=N --max-heap=N --max-mmap=N --max-fds=N --max-pipe-buf=N
//                                  per-sandbox resource ceilings (0 = off)
//
// Chaos (deterministic fault injection; same flags => same run):
//   --chaos-seed=N                 enable injection with this seed
//   --chaos-profile=NAME           none|memfault|syscall|sched|storm
//
// Snapshots (docs/SNAPSHOTS.md):
//   --snapshot-out=FILE   capture the first sandbox right after load (the
//                         post-load checkpoint) to FILE, then run normally
//   --snapshot-in=FILE    spawn sandbox(es) from a snapshot file instead
//                         of (or alongside) ELF executables
//   --snapshot-spawn=N    how many sandboxes to spawn from --snapshot-in
//                         (default 1; they share pages copy-on-write)
//
// Usage: lfi-run [--no-verify] [--core=m1|t2a] [--stats] [--trace out.json]
//                [--policy=...] [--chaos-seed=N] prog.elf [prog2.elf ...]
//
// Exit status: program's own status; 1 if a sandbox was killed, deadlocked,
// or the verifier rejected an input (REJECT line mirrors lfi-verify);
// 2 on usage/IO errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "runtime/runtime.h"
#include "snapshot/snapshot.h"
#include "trace/trace.h"

namespace {

// Parses "--name=value" into value; returns false if arg isn't --name=.
bool U64Flag(const std::string& arg, const char* name, uint64_t* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = std::strtoull(arg.c_str() + prefix.size(), nullptr, 0);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  lfi::runtime::RuntimeConfig cfg;
  cfg.core = lfi::arch::AppleM1LikeParams();
  std::vector<std::string> paths;
  bool want_stats = false;
  const char* trace_path = nullptr;
  bool chaos_enabled = false;
  uint64_t chaos_seed = 0;
  std::string chaos_profile = "storm";
  std::string snapshot_out, snapshot_in;
  uint64_t snapshot_spawn = 1;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    uint64_t v = 0;
    if (arg == "--no-verify") {
      cfg.enforce_verification = false;
    } else if (arg == "--core=t2a") {
      cfg.core = lfi::arch::GcpT2aLikeParams();
    } else if (arg == "--core=m1") {
      cfg.core = lfi::arch::AppleM1LikeParams();
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--trace") {
      if (k + 1 >= argc) {
        std::fprintf(stderr, "lfi-run: --trace needs a file argument\n");
        return 2;
      }
      trace_path = argv[++k];
    } else if (arg == "--policy=kill") {
      cfg.default_policy.on_fault = lfi::runtime::FaultAction::kKill;
    } else if (arg == "--policy=signal") {
      cfg.default_policy.on_fault = lfi::runtime::FaultAction::kSignal;
    } else if (arg == "--policy=restart") {
      cfg.default_policy.on_fault = lfi::runtime::FaultAction::kRestart;
    } else if (U64Flag(arg, "--restart-budget", &v)) {
      cfg.default_policy.restart_budget = static_cast<uint32_t>(v);
    } else if (U64Flag(arg, "--max-cycles", &v)) {
      cfg.default_policy.limits.max_cpu_cycles = v;
    } else if (U64Flag(arg, "--max-heap", &v)) {
      cfg.default_policy.limits.max_heap_bytes = v;
    } else if (U64Flag(arg, "--max-mmap", &v)) {
      cfg.default_policy.limits.max_mmap_bytes = v;
    } else if (U64Flag(arg, "--max-fds", &v)) {
      cfg.default_policy.limits.max_fds = v;
    } else if (U64Flag(arg, "--max-pipe-buf", &v)) {
      cfg.default_policy.limits.max_pipe_buffer_bytes = v;
    } else if (U64Flag(arg, "--chaos-seed", &v)) {
      chaos_enabled = true;
      chaos_seed = v;
    } else if (arg.rfind("--chaos-profile=", 0) == 0) {
      chaos_enabled = true;
      chaos_profile = arg.substr(std::strlen("--chaos-profile="));
    } else if (arg.rfind("--snapshot-out=", 0) == 0) {
      snapshot_out = arg.substr(std::strlen("--snapshot-out="));
    } else if (arg.rfind("--snapshot-in=", 0) == 0) {
      snapshot_in = arg.substr(std::strlen("--snapshot-in="));
    } else if (U64Flag(arg, "--snapshot-spawn", &v)) {
      snapshot_spawn = v;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: lfi-run [--no-verify] [--core=m1|t2a] [--stats] "
                   "[--trace out.json]\n"
                   "               [--policy=kill|signal|restart] "
                   "[--restart-budget=N]\n"
                   "               [--max-cycles=N] [--max-heap=N] "
                   "[--max-mmap=N] [--max-fds=N] [--max-pipe-buf=N]\n"
                   "               [--chaos-seed=N] "
                   "[--chaos-profile=none|memfault|syscall|sched|storm]\n"
                   "               [--snapshot-out=FILE] [--snapshot-in=FILE "
                   "[--snapshot-spawn=N]]\n"
                   "               prog.elf [...]\n");
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty() && snapshot_in.empty()) {
    std::fprintf(stderr, "lfi-run: no executables given\n");
    return 2;
  }
  if (!snapshot_out.empty() && paths.empty()) {
    std::fprintf(stderr, "lfi-run: --snapshot-out needs an executable\n");
    return 2;
  }

  const lfi::chaos::ChaosProfile profile =
      lfi::chaos::ProfileByName(chaos_profile);
  if (chaos_enabled && profile.name.empty()) {
    std::fprintf(stderr, "lfi-run: unknown chaos profile '%s'\n",
                 chaos_profile.c_str());
    return 2;
  }

  lfi::runtime::Runtime rt(cfg);
  lfi::trace::TraceSink sink;
  if (want_stats || trace_path != nullptr) rt.set_trace_sink(&sink);
  lfi::chaos::ChaosEngine chaos(chaos_seed, profile);
  if (chaos_enabled) rt.set_chaos(&chaos);

  std::vector<int> pids;
  std::vector<std::string> labels;  // per-pid display name for reporting
  for (const auto& path : paths) {
    std::ifstream f(path, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "lfi-run: cannot open %s\n", path.c_str());
      return 2;
    }
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                               std::istreambuf_iterator<char>());
    auto pid = rt.Load({bytes.data(), bytes.size()});
    if (!pid) {
      const auto& v = rt.last_verify_result();
      if (!v.ok) {
        // Mirror lfi-verify's REJECT output (plus the stable kind name) so
        // scripted pipelines can treat the two tools interchangeably.
        std::fprintf(stderr,
                     "lfi-run: %s: REJECT (%s) at text offset 0x%llx: %s\n",
                     path.c_str(), lfi::verifier::FailKindName(v.kind),
                     static_cast<unsigned long long>(v.fail_offset),
                     v.reason.c_str());
        return 1;
      }
      std::fprintf(stderr, "lfi-run: %s: %s\n", path.c_str(),
                   pid.error().c_str());
      return 2;
    }
    pids.push_back(*pid);
    labels.push_back(path);
  }

  if (!snapshot_out.empty()) {
    // Capture the post-load checkpoint of the first sandbox, before any
    // instruction runs: spawning from this file replays the program from
    // its entry point.
    auto snap = rt.CaptureSnapshot(pids[0]);
    if (!snap) {
      std::fprintf(stderr, "lfi-run: snapshot capture failed: %s\n",
                   snap.error().c_str());
      return 2;
    }
    if (auto st = lfi::snapshot::WriteFile(*snap, snapshot_out); !st.ok()) {
      std::fprintf(stderr, "lfi-run: %s: %s\n", snapshot_out.c_str(),
                   st.error().c_str());
      return 2;
    }
  }

  if (!snapshot_in.empty()) {
    auto snap = lfi::snapshot::ReadFile(snapshot_in);
    if (!snap) {
      std::fprintf(stderr, "lfi-run: %s: %s\n", snapshot_in.c_str(),
                   snap.error().c_str());
      return 2;
    }
    auto shared =
        std::make_shared<const lfi::snapshot::Snapshot>(std::move(*snap));
    for (uint64_t k = 0; k < snapshot_spawn; ++k) {
      auto pid = rt.SpawnFromSnapshot(shared);
      if (!pid) {
        std::fprintf(stderr, "lfi-run: %s: %s\n", snapshot_in.c_str(),
                     pid.error().c_str());
        return 2;
      }
      pids.push_back(*pid);
      labels.push_back(snapshot_in + "#" + std::to_string(k));
    }
  }

  const int leftover = rt.RunUntilIdle();
  int rc = 0;
  for (size_t k = 0; k < pids.size(); ++k) {
    const auto* p = rt.proc(pids[k]);
    if (!p->out.empty()) std::fwrite(p->out.data(), 1, p->out.size(), stdout);
    if (p->exit_kind == lfi::runtime::ExitKind::kKilled) {
      std::fprintf(stderr,
                   "lfi-run: %s: killed (%s) [signal %d, disposition %s, "
                   "restarts %u, signals delivered %u]\n",
                   labels[k].c_str(), p->fault_detail.c_str(), p->term_signal,
                   lfi::runtime::DispositionName(p->disposition), p->restarts,
                   p->sig.delivered);
      rc = 1;
    } else if (p->exit_kind == lfi::runtime::ExitKind::kExited) {
      if (p->exit_status != 0) {
        // A nonzero exit after a recovered fault still reports how the
        // fault was resolved, so operators can tell "crashed and
        // recovered" from "plain error exit".
        if (p->disposition != lfi::runtime::Disposition::kNone) {
          std::fprintf(stderr,
                       "lfi-run: %s: exit %d [disposition %s, restarts %u, "
                       "signals delivered %u%s%s]\n",
                       labels[k].c_str(), p->exit_status,
                       lfi::runtime::DispositionName(p->disposition),
                       p->restarts, p->sig.delivered,
                       p->fault_detail.empty() ? "" : ", last fault: ",
                       p->fault_detail.c_str());
        }
        rc = p->exit_status;
      }
    }
  }
  if (leftover != 0) {
    std::fprintf(stderr, "lfi-run: %d process(es) deadlocked\n", leftover);
    rc = 1;
  }
  std::fprintf(stderr, "lfi-run: %.1f simulated us on %s\n",
               rt.machine().timing().Nanoseconds() / 1000.0,
               cfg.core.name.c_str());

  if (want_stats) {
    // Counter table + verifier stats go to stderr so program stdout stays
    // clean for pipelines.
    {
      std::ostringstream ss;
      sink.WriteStats(ss, lfi::runtime::RtcallName);
      const auto& vs = rt.verify_stats();
      char line[160];
      snprintf(line, sizeof(line),
               "verifier: %llu call(s), %llu insts checked, decode %.3f ms, "
               "checks %.3f ms\n",
               static_cast<unsigned long long>(vs.calls),
               static_cast<unsigned long long>(vs.insts_checked),
               vs.decode_seconds * 1e3, vs.check_seconds * 1e3);
      ss << line;
      for (size_t k = 0; k < vs.fail_counts.size(); ++k) {
        if (k == 0 || vs.fail_counts[k] == 0) continue;
        snprintf(line, sizeof(line), "  reject %-24s %llu\n",
                 lfi::verifier::FailKindName(
                     static_cast<lfi::verifier::FailKind>(k)),
                 static_cast<unsigned long long>(vs.fail_counts[k]));
        ss << line;
      }
      const std::string s = ss.str();
      std::fwrite(s.data(), 1, s.size(), stderr);
    }
  }
  if (trace_path != nullptr) {
    std::ofstream tf(trace_path, std::ios::binary | std::ios::trunc);
    if (!tf) {
      std::fprintf(stderr, "lfi-run: cannot write %s\n", trace_path);
      return 2;
    }
    sink.WriteChromeTrace(tf, cfg.core.ghz, lfi::runtime::RtcallName);
  }
  return rc;
}
