// lfi-run: loads one or more LFI ELF executables into sandboxes and runs
// them to completion under the runtime (Section 5.3). Prints each
// sandbox's captured output and exit status.
//
// Usage: lfi-run [--no-verify] [--core=m1|t2a] prog.elf [prog2.elf ...]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/runtime.h"

int main(int argc, char** argv) {
  lfi::runtime::RuntimeConfig cfg;
  cfg.core = lfi::arch::AppleM1LikeParams();
  std::vector<std::string> paths;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg == "--no-verify") {
      cfg.enforce_verification = false;
    } else if (arg == "--core=t2a") {
      cfg.core = lfi::arch::GcpT2aLikeParams();
    } else if (arg == "--core=m1") {
      cfg.core = lfi::arch::AppleM1LikeParams();
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: lfi-run [--no-verify] [--core=m1|t2a] prog.elf "
                   "[...]\n");
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "lfi-run: no executables given\n");
    return 2;
  }

  lfi::runtime::Runtime rt(cfg);
  std::vector<int> pids;
  for (const auto& path : paths) {
    std::ifstream f(path, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "lfi-run: cannot open %s\n", path.c_str());
      return 2;
    }
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                               std::istreambuf_iterator<char>());
    auto pid = rt.Load({bytes.data(), bytes.size()});
    if (!pid) {
      std::fprintf(stderr, "lfi-run: %s: %s\n", path.c_str(),
                   pid.error().c_str());
      return 2;
    }
    pids.push_back(*pid);
  }

  const int leftover = rt.RunUntilIdle();
  int rc = 0;
  for (size_t k = 0; k < pids.size(); ++k) {
    const auto* p = rt.proc(pids[k]);
    if (!p->out.empty()) std::fwrite(p->out.data(), 1, p->out.size(), stdout);
    if (p->exit_kind == lfi::runtime::ExitKind::kKilled) {
      std::fprintf(stderr, "lfi-run: %s: killed (%s)\n", paths[k].c_str(),
                   p->fault_detail.c_str());
      rc = 1;
    } else if (p->exit_kind == lfi::runtime::ExitKind::kExited) {
      if (p->exit_status != 0) rc = p->exit_status;
    }
  }
  if (leftover != 0) {
    std::fprintf(stderr, "lfi-run: %d process(es) deadlocked\n", leftover);
    rc = 1;
  }
  std::fprintf(stderr, "lfi-run: %.1f simulated us on %s\n",
               rt.machine().timing().Nanoseconds() / 1000.0,
               cfg.core.name.c_str());
  return rc;
}
