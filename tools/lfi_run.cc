// lfi-run: loads one or more LFI ELF executables into sandboxes and runs
// them to completion under the runtime (Section 5.3). Prints each
// sandbox's captured output and exit status.
//
// Observability (docs/OBSERVABILITY.md):
//   --stats        per-sandbox counter table + verifier stats on stderr
//   --trace FILE   Chrome trace_event JSON (open in Perfetto or
//                  chrome://tracing); timestamps come from the simulated
//                  clock, so identical runs produce byte-identical files
//
// Fault policy and limits (docs/FAULTS.md):
//   --policy=kill|signal|restart   fault policy for every sandbox
//   --restart-budget=N             restarts before degrading to kill
//   --max-cycles=N --max-heap=N --max-mmap=N --max-fds=N --max-pipe-buf=N
//                                  per-sandbox resource ceilings (0 = off)
//
// Chaos (deterministic fault injection; same flags => same run):
//   --chaos-seed=N                 enable injection with this seed
//   --chaos-profile=NAME           none|memfault|syscall|sched|storm
//
// Snapshots (docs/SNAPSHOTS.md):
//   --snapshot-out=FILE   capture the first sandbox right after load (the
//                         post-load checkpoint) to FILE, then run normally
//   --snapshot-in=FILE    spawn sandbox(es) from a snapshot file instead
//                         of (or alongside) ELF executables
//   --snapshot-spawn=N    how many sandboxes to spawn from --snapshot-in
//                         (default 1; they share pages copy-on-write)
//
// Serving (docs/SERVING.md): drive synthetic traffic through the handler
// instead of running it once. The handler comes from --snapshot-in, or
// from the first ELF's post-load checkpoint. The deterministic serving
// transcript (ServeReport::Format) goes to stdout — identical flags
// replay byte-identically, chaos included.
//   --serve=N                 serve N requests, then report
//   --serve-arrival=KIND      poisson|bursty|closed (default poisson)
//   --serve-seed=N            traffic seed (default 1)
//   --serve-rate=N            open-loop arrivals per 1M cycles
//   --serve-tenants=N         tenant count (default 4)
//   --serve-concurrency=N     in-flight request cap
//   --serve-queue=N           admission queue depth (shed beyond it)
//   --serve-pool=MIN:MAX      warm-pool sizing bounds
//   --serve-slo=N             per-request latency SLO in cycles
//   --serve-cold              cold-load the ELF per request (no pool)
//   --serve-quota=I:Q         per-tenant caps: I in flight, Q queued
//                             (0 = uncapped)
//   --serve-retries=N         retry budget per request (deadline-aware,
//                             capped exponential backoff)
//   --serve-retry-backoff=B:C backoff base and cap in cycles
//   --serve-breaker=T:O       circuit breaker: open after T consecutive
//                             failures, probe after O cycles
//   --serve-degrade[=A:B:C]   overload ladder on (EWMA depths for
//                             shed-low-tier / no-retry / fast-fail)
//   --chaos-tenants=LIST      comma-separated tenants whose sandboxes the
//                             chaos engine targets (serving mode; other
//                             tenants' sandboxes are never victims)
//
// Contradictory or degenerate serving configs (zero queue, zero SLO with
// retries, a quota wider than the queue, ...) are rejected up front with
// a one-line error and exit status 2.
//
// Usage: lfi-run [--no-verify] [--core=m1|t2a] [--stats] [--trace out.json]
//                [--policy=...] [--chaos-seed=N] prog.elf [prog2.elf ...]
//
// Exit status: program's own status; 1 if a sandbox was killed, deadlocked,
// or the verifier rejected an input (REJECT line mirrors lfi-verify);
// 2 on usage/IO errors. Serving mode: 0, or 1 if the run aborted.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "runtime/runtime.h"
#include "runtime/spawn_pool.h"
#include "serve/serve.h"
#include "snapshot/snapshot.h"
#include "trace/trace.h"

namespace {

// Parses "--name=value" into value; returns false if arg isn't --name=.
bool U64Flag(const std::string& arg, const char* name, uint64_t* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = std::strtoull(arg.c_str() + prefix.size(), nullptr, 0);
  return true;
}

// End-of-run footer shared by the run-once and serving paths: simulated
// time, then the optional counter/verifier table and Chrome trace
// (docs/OBSERVABILITY.md). Returns `rc` unchanged unless trace IO fails.
int EmitFooter(lfi::runtime::Runtime& rt, lfi::trace::TraceSink& sink,
               const lfi::runtime::RuntimeConfig& cfg, bool want_stats,
               const char* trace_path, int rc) {
  std::fprintf(stderr, "lfi-run: %.1f simulated us on %s\n",
               rt.machine().timing().Nanoseconds() / 1000.0,
               cfg.core.name.c_str());
  if (want_stats) {
    // Counter table + verifier stats go to stderr so program stdout stays
    // clean for pipelines.
    std::ostringstream ss;
    sink.WriteStats(ss, lfi::runtime::RtcallName);
    const auto& vs = rt.verify_stats();
    char line[160];
    snprintf(line, sizeof(line),
             "verifier: %llu call(s), %llu insts checked, decode %.3f ms, "
             "checks %.3f ms\n",
             static_cast<unsigned long long>(vs.calls),
             static_cast<unsigned long long>(vs.insts_checked),
             vs.decode_seconds * 1e3, vs.check_seconds * 1e3);
    ss << line;
    for (size_t k = 0; k < vs.fail_counts.size(); ++k) {
      if (k == 0 || vs.fail_counts[k] == 0) continue;
      snprintf(line, sizeof(line), "  reject %-24s %llu\n",
               lfi::verifier::FailKindName(
                   static_cast<lfi::verifier::FailKind>(k)),
               static_cast<unsigned long long>(vs.fail_counts[k]));
      ss << line;
    }
    const std::string s = ss.str();
    std::fwrite(s.data(), 1, s.size(), stderr);
  }
  if (trace_path != nullptr) {
    std::ofstream tf(trace_path, std::ios::binary | std::ios::trunc);
    if (!tf) {
      std::fprintf(stderr, "lfi-run: cannot write %s\n", trace_path);
      return 2;
    }
    sink.WriteChromeTrace(tf, cfg.core.ghz, lfi::runtime::RtcallName);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  lfi::runtime::RuntimeConfig cfg;
  cfg.core = lfi::arch::AppleM1LikeParams();
  std::vector<std::string> paths;
  bool want_stats = false;
  const char* trace_path = nullptr;
  bool chaos_enabled = false;
  uint64_t chaos_seed = 0;
  std::string chaos_profile = "storm";
  std::string snapshot_out, snapshot_in;
  uint64_t snapshot_spawn = 1;
  // kUnset distinguishes "flag not given" from an explicit zero: explicit
  // zeros reach the validator and are rejected instead of being ignored.
  constexpr uint64_t kUnset = ~uint64_t{0};
  uint64_t serve_requests = 0;
  std::string serve_arrival = "poisson", serve_pool_bounds;
  std::string serve_quota, serve_retry_backoff, serve_breaker, serve_degrade;
  std::string chaos_tenants;
  uint64_t serve_seed = 1, serve_rate = kUnset, serve_tenants = 4;
  uint64_t serve_concurrency = kUnset, serve_queue = kUnset;
  uint64_t serve_slo = kUnset, serve_retries = 0;
  bool serve_degrade_on = false;
  bool serve_cold = false;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    uint64_t v = 0;
    if (arg == "--no-verify") {
      cfg.enforce_verification = false;
    } else if (arg == "--core=t2a") {
      cfg.core = lfi::arch::GcpT2aLikeParams();
    } else if (arg == "--core=m1") {
      cfg.core = lfi::arch::AppleM1LikeParams();
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--trace") {
      if (k + 1 >= argc) {
        std::fprintf(stderr, "lfi-run: --trace needs a file argument\n");
        return 2;
      }
      trace_path = argv[++k];
    } else if (arg == "--policy=kill") {
      cfg.default_policy.on_fault = lfi::runtime::FaultAction::kKill;
    } else if (arg == "--policy=signal") {
      cfg.default_policy.on_fault = lfi::runtime::FaultAction::kSignal;
    } else if (arg == "--policy=restart") {
      cfg.default_policy.on_fault = lfi::runtime::FaultAction::kRestart;
    } else if (U64Flag(arg, "--restart-budget", &v)) {
      cfg.default_policy.restart_budget = static_cast<uint32_t>(v);
    } else if (U64Flag(arg, "--max-cycles", &v)) {
      cfg.default_policy.limits.max_cpu_cycles = v;
    } else if (U64Flag(arg, "--max-heap", &v)) {
      cfg.default_policy.limits.max_heap_bytes = v;
    } else if (U64Flag(arg, "--max-mmap", &v)) {
      cfg.default_policy.limits.max_mmap_bytes = v;
    } else if (U64Flag(arg, "--max-fds", &v)) {
      cfg.default_policy.limits.max_fds = v;
    } else if (U64Flag(arg, "--max-pipe-buf", &v)) {
      cfg.default_policy.limits.max_pipe_buffer_bytes = v;
    } else if (U64Flag(arg, "--chaos-seed", &v)) {
      chaos_enabled = true;
      chaos_seed = v;
    } else if (arg.rfind("--chaos-profile=", 0) == 0) {
      chaos_enabled = true;
      chaos_profile = arg.substr(std::strlen("--chaos-profile="));
    } else if (arg.rfind("--snapshot-out=", 0) == 0) {
      snapshot_out = arg.substr(std::strlen("--snapshot-out="));
    } else if (arg.rfind("--snapshot-in=", 0) == 0) {
      snapshot_in = arg.substr(std::strlen("--snapshot-in="));
    } else if (U64Flag(arg, "--snapshot-spawn", &v)) {
      snapshot_spawn = v;
    } else if (U64Flag(arg, "--serve", &serve_requests)) {
    } else if (arg.rfind("--serve-arrival=", 0) == 0) {
      serve_arrival = arg.substr(std::strlen("--serve-arrival="));
    } else if (U64Flag(arg, "--serve-seed", &serve_seed)) {
    } else if (U64Flag(arg, "--serve-rate", &serve_rate)) {
    } else if (U64Flag(arg, "--serve-tenants", &serve_tenants)) {
    } else if (U64Flag(arg, "--serve-concurrency", &serve_concurrency)) {
    } else if (U64Flag(arg, "--serve-queue", &serve_queue)) {
    } else if (arg.rfind("--serve-pool=", 0) == 0) {
      serve_pool_bounds = arg.substr(std::strlen("--serve-pool="));
    } else if (U64Flag(arg, "--serve-slo", &serve_slo)) {
    } else if (arg == "--serve-cold") {
      serve_cold = true;
    } else if (arg.rfind("--serve-quota=", 0) == 0) {
      serve_quota = arg.substr(std::strlen("--serve-quota="));
    } else if (U64Flag(arg, "--serve-retries", &serve_retries)) {
    } else if (arg.rfind("--serve-retry-backoff=", 0) == 0) {
      serve_retry_backoff = arg.substr(std::strlen("--serve-retry-backoff="));
    } else if (arg.rfind("--serve-breaker=", 0) == 0) {
      serve_breaker = arg.substr(std::strlen("--serve-breaker="));
    } else if (arg == "--serve-degrade") {
      serve_degrade_on = true;
    } else if (arg.rfind("--serve-degrade=", 0) == 0) {
      serve_degrade_on = true;
      serve_degrade = arg.substr(std::strlen("--serve-degrade="));
    } else if (arg.rfind("--chaos-tenants=", 0) == 0) {
      chaos_tenants = arg.substr(std::strlen("--chaos-tenants="));
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: lfi-run [--no-verify] [--core=m1|t2a] [--stats] "
                   "[--trace out.json]\n"
                   "               [--policy=kill|signal|restart] "
                   "[--restart-budget=N]\n"
                   "               [--max-cycles=N] [--max-heap=N] "
                   "[--max-mmap=N] [--max-fds=N] [--max-pipe-buf=N]\n"
                   "               [--chaos-seed=N] "
                   "[--chaos-profile=none|memfault|syscall|sched|storm]\n"
                   "               [--snapshot-out=FILE] [--snapshot-in=FILE "
                   "[--snapshot-spawn=N]]\n"
                   "               [--serve=N [--serve-arrival=poisson|bursty|"
                   "closed] [--serve-seed=N]\n"
                   "                [--serve-rate=N] [--serve-tenants=N] "
                   "[--serve-concurrency=N]\n"
                   "                [--serve-queue=N] [--serve-pool=MIN:MAX] "
                   "[--serve-slo=N] [--serve-cold]\n"
                   "                [--serve-quota=I:Q] [--serve-retries=N] "
                   "[--serve-retry-backoff=B:C]\n"
                   "                [--serve-breaker=T:O] "
                   "[--serve-degrade[=A:B:C]] [--chaos-tenants=LIST]]\n"
                   "               prog.elf [...]\n");
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty() && snapshot_in.empty()) {
    std::fprintf(stderr, "lfi-run: no executables given\n");
    return 2;
  }
  if (!chaos_tenants.empty() && serve_requests == 0) {
    std::fprintf(stderr, "lfi-run: --chaos-tenants only applies to --serve\n");
    return 2;
  }
  if (!snapshot_out.empty() && paths.empty()) {
    std::fprintf(stderr, "lfi-run: --snapshot-out needs an executable\n");
    return 2;
  }

  const lfi::chaos::ChaosProfile profile =
      lfi::chaos::ProfileByName(chaos_profile);
  if (chaos_enabled && profile.name.empty()) {
    std::fprintf(stderr, "lfi-run: unknown chaos profile '%s'\n",
                 chaos_profile.c_str());
    return 2;
  }

  lfi::runtime::Runtime rt(cfg);
  lfi::trace::TraceSink sink;
  if (want_stats || trace_path != nullptr) rt.set_trace_sink(&sink);
  lfi::chaos::ChaosEngine chaos(chaos_seed, profile);
  if (chaos_enabled) rt.set_chaos(&chaos);

  if (serve_requests > 0) {
    lfi::serve::ServeConfig scfg;
    scfg.traffic.requests = serve_requests;
    scfg.traffic.seed = serve_seed;
    scfg.traffic.tenants = static_cast<uint32_t>(serve_tenants);
    if (!lfi::serve::TrafficKindByName(serve_arrival, &scfg.traffic.kind)) {
      std::fprintf(stderr, "lfi-run: unknown arrival process '%s'\n",
                   serve_arrival.c_str());
      return 2;
    }
    if (serve_rate != kUnset) scfg.traffic.rate_per_mcycle = serve_rate;
    if (serve_queue != kUnset) {
      scfg.admission.max_queue_depth = static_cast<uint32_t>(serve_queue);
    }
    if (serve_concurrency != kUnset) {
      scfg.max_concurrency = static_cast<uint32_t>(serve_concurrency);
    }
    if (!serve_pool_bounds.empty()) {
      unsigned lo = 0, hi = 0;
      if (std::sscanf(serve_pool_bounds.c_str(), "%u:%u", &lo, &hi) != 2 ||
          lo > hi) {
        std::fprintf(stderr, "lfi-run: --serve-pool wants MIN:MAX\n");
        return 2;
      }
      scfg.pool_min = lo;
      scfg.pool_max = hi;
    }
    if (!serve_quota.empty()) {
      unsigned inflight = 0, queued = 0;
      if (std::sscanf(serve_quota.c_str(), "%u:%u", &inflight, &queued) != 2) {
        std::fprintf(stderr, "lfi-run: --serve-quota wants INFLIGHT:QUEUED\n");
        return 2;
      }
      scfg.default_quota.max_inflight = inflight;
      scfg.default_quota.max_queued = queued;
    }
    scfg.retry.budget = static_cast<uint32_t>(serve_retries);
    if (!serve_retry_backoff.empty()) {
      unsigned long long base = 0, cap = 0;
      if (std::sscanf(serve_retry_backoff.c_str(), "%llu:%llu", &base,
                      &cap) != 2) {
        std::fprintf(stderr, "lfi-run: --serve-retry-backoff wants BASE:CAP\n");
        return 2;
      }
      scfg.retry.backoff_base_cycles = base;
      scfg.retry.backoff_cap_cycles = cap;
    }
    if (!serve_breaker.empty()) {
      unsigned threshold = 0;
      unsigned long long open_cycles = 0;
      if (std::sscanf(serve_breaker.c_str(), "%u:%llu", &threshold,
                      &open_cycles) != 2) {
        std::fprintf(stderr,
                     "lfi-run: --serve-breaker wants THRESHOLD:OPEN_CYCLES\n");
        return 2;
      }
      scfg.breaker.failure_threshold = threshold;
      scfg.breaker.open_cycles = open_cycles;
    }
    if (serve_degrade_on) {
      scfg.degrade.enabled = true;
      if (!serve_degrade.empty()) {
        unsigned long long a = 0, b = 0, c = 0;
        if (std::sscanf(serve_degrade.c_str(), "%llu:%llu:%llu", &a, &b,
                        &c) != 3) {
          std::fprintf(stderr,
                       "lfi-run: --serve-degrade wants "
                       "SHED_DEPTH:NO_RETRY_DEPTH:FAST_FAIL_DEPTH\n");
          return 2;
        }
        scfg.degrade.shed_tier_depth = a;
        scfg.degrade.no_retry_depth = b;
        scfg.degrade.fast_fail_depth = c;
      }
    }
    if (!chaos_tenants.empty()) {
      if (!chaos_enabled) {
        std::fprintf(stderr,
                     "lfi-run: --chaos-tenants needs --chaos-seed or "
                     "--chaos-profile\n");
        return 2;
      }
      std::stringstream ss(chaos_tenants);
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        if (tok.empty() ||
            tok.find_first_not_of("0123456789") != std::string::npos) {
          std::fprintf(stderr,
                       "lfi-run: --chaos-tenants wants a comma-separated "
                       "tenant list\n");
          return 2;
        }
        scfg.chaos_tenants.push_back(
            static_cast<uint32_t>(std::strtoul(tok.c_str(), nullptr, 10)));
      }
      scfg.chaos = &chaos;
    }
    // Every tenant serves under the CLI-configured fault policy and
    // limits; --serve-slo overrides the default latency target.
    lfi::serve::QosTier tier;
    tier.policy = cfg.default_policy;
    if (serve_slo != kUnset) tier.slo_cycles = serve_slo;
    scfg.tiers.push_back(tier);

    // Reject degenerate or contradictory serving configs up front: a
    // silent "0 means default" would make --serve-queue=0 serve with a
    // 64-deep queue, which is exactly the kind of config drift the
    // deterministic transcripts exist to rule out.
    std::string cfg_err;
    if (!lfi::serve::ValidateServeConfig(scfg, &cfg_err)) {
      if (serve_retries > 0 && serve_slo == 0) {
        cfg_err = "retry budget without a deadline (--serve-retries needs "
                  "--serve-slo > 0)";
      }
      std::fprintf(stderr, "lfi-run: invalid serving config: %s\n",
                   cfg_err.c_str());
      return 2;
    }

    std::vector<uint8_t> bytes;
    if (!paths.empty()) {
      std::ifstream f(paths[0], std::ios::binary);
      if (!f) {
        std::fprintf(stderr, "lfi-run: cannot open %s\n", paths[0].c_str());
        return 2;
      }
      bytes.assign((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
    }

    lfi::elf::ElfImage cold_image;   // must outlive the Server in cold mode
    std::unique_ptr<lfi::runtime::SpawnPool> pool;
    std::optional<lfi::serve::Server> srv;
    if (serve_cold) {
      if (bytes.empty()) {
        std::fprintf(stderr, "lfi-run: --serve-cold needs an executable\n");
        return 2;
      }
      auto image = lfi::elf::Read({bytes.data(), bytes.size()});
      if (!image) {
        std::fprintf(stderr, "lfi-run: %s: %s\n", paths[0].c_str(),
                     image.error().c_str());
        return 2;
      }
      cold_image = std::move(*image);
      srv.emplace(&rt, scfg, &cold_image);
    } else {
      std::shared_ptr<const lfi::snapshot::Snapshot> snap;
      if (!snapshot_in.empty()) {
        auto s = lfi::snapshot::ReadFile(snapshot_in);
        if (!s) {
          std::fprintf(stderr, "lfi-run: %s: %s\n", snapshot_in.c_str(),
                       s.error().c_str());
          return 2;
        }
        snap = std::make_shared<const lfi::snapshot::Snapshot>(std::move(*s));
      } else if (!bytes.empty()) {
        // Load the handler once, capture its post-load checkpoint as the
        // pool image, and retire the template: every served sandbox is a
        // fresh COW instantiation of that checkpoint.
        auto pid = rt.Load({bytes.data(), bytes.size()});
        if (!pid) {
          const auto& vr = rt.last_verify_result();
          if (!vr.ok) {
            std::fprintf(stderr,
                         "lfi-run: %s: REJECT (%s) at text offset 0x%llx: "
                         "%s\n",
                         paths[0].c_str(),
                         lfi::verifier::FailKindName(vr.kind),
                         static_cast<unsigned long long>(vr.fail_offset),
                         vr.reason.c_str());
            return 1;
          }
          std::fprintf(stderr, "lfi-run: %s: %s\n", paths[0].c_str(),
                       pid.error().c_str());
          return 2;
        }
        auto s = rt.CaptureSnapshot(*pid);
        if (!s) {
          std::fprintf(stderr, "lfi-run: snapshot capture failed: %s\n",
                       s.error().c_str());
          return 2;
        }
        if (!snapshot_out.empty()) {
          if (auto st = lfi::snapshot::WriteFile(*s, snapshot_out);
              !st.ok()) {
            std::fprintf(stderr, "lfi-run: %s: %s\n", snapshot_out.c_str(),
                         st.error().c_str());
            return 2;
          }
        }
        snap = std::make_shared<const lfi::snapshot::Snapshot>(std::move(*s));
        rt.Kill(*pid, "serve: template retired");
      } else {
        std::fprintf(stderr,
                     "lfi-run: --serve needs an executable or "
                     "--snapshot-in\n");
        return 2;
      }
      pool = std::make_unique<lfi::runtime::SpawnPool>(&rt, std::move(snap));
      srv.emplace(&rt, scfg, pool.get());
    }

    const lfi::serve::ServeReport& rep = srv->Run();
    const std::string transcript = rep.Format();
    std::fwrite(transcript.data(), 1, transcript.size(), stdout);
    if (rep.aborted) {
      std::fprintf(stderr, "lfi-run: serving aborted after %llu steps\n",
                   static_cast<unsigned long long>(rep.steps));
    }
    return EmitFooter(rt, sink, cfg, want_stats, trace_path,
                      rep.aborted ? 1 : 0);
  }

  std::vector<int> pids;
  std::vector<std::string> labels;  // per-pid display name for reporting
  for (const auto& path : paths) {
    std::ifstream f(path, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "lfi-run: cannot open %s\n", path.c_str());
      return 2;
    }
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                               std::istreambuf_iterator<char>());
    auto pid = rt.Load({bytes.data(), bytes.size()});
    if (!pid) {
      const auto& v = rt.last_verify_result();
      if (!v.ok) {
        // Mirror lfi-verify's REJECT output (plus the stable kind name) so
        // scripted pipelines can treat the two tools interchangeably.
        std::fprintf(stderr,
                     "lfi-run: %s: REJECT (%s) at text offset 0x%llx: %s\n",
                     path.c_str(), lfi::verifier::FailKindName(v.kind),
                     static_cast<unsigned long long>(v.fail_offset),
                     v.reason.c_str());
        return 1;
      }
      std::fprintf(stderr, "lfi-run: %s: %s\n", path.c_str(),
                   pid.error().c_str());
      return 2;
    }
    pids.push_back(*pid);
    labels.push_back(path);
  }

  if (!snapshot_out.empty()) {
    // Capture the post-load checkpoint of the first sandbox, before any
    // instruction runs: spawning from this file replays the program from
    // its entry point.
    auto snap = rt.CaptureSnapshot(pids[0]);
    if (!snap) {
      std::fprintf(stderr, "lfi-run: snapshot capture failed: %s\n",
                   snap.error().c_str());
      return 2;
    }
    if (auto st = lfi::snapshot::WriteFile(*snap, snapshot_out); !st.ok()) {
      std::fprintf(stderr, "lfi-run: %s: %s\n", snapshot_out.c_str(),
                   st.error().c_str());
      return 2;
    }
  }

  if (!snapshot_in.empty()) {
    auto snap = lfi::snapshot::ReadFile(snapshot_in);
    if (!snap) {
      std::fprintf(stderr, "lfi-run: %s: %s\n", snapshot_in.c_str(),
                   snap.error().c_str());
      return 2;
    }
    auto shared =
        std::make_shared<const lfi::snapshot::Snapshot>(std::move(*snap));
    for (uint64_t k = 0; k < snapshot_spawn; ++k) {
      auto pid = rt.SpawnFromSnapshot(shared);
      if (!pid) {
        std::fprintf(stderr, "lfi-run: %s: %s\n", snapshot_in.c_str(),
                     pid.error().c_str());
        return 2;
      }
      pids.push_back(*pid);
      labels.push_back(snapshot_in + "#" + std::to_string(k));
    }
  }

  const int leftover = rt.RunUntilIdle();
  int rc = 0;
  for (size_t k = 0; k < pids.size(); ++k) {
    const auto* p = rt.proc(pids[k]);
    if (!p->out.empty()) std::fwrite(p->out.data(), 1, p->out.size(), stdout);
    if (p->exit_kind == lfi::runtime::ExitKind::kKilled) {
      std::fprintf(stderr,
                   "lfi-run: %s: killed (%s) [signal %d, disposition %s, "
                   "restarts %u, signals delivered %u]\n",
                   labels[k].c_str(), p->fault_detail.c_str(), p->term_signal,
                   lfi::runtime::DispositionName(p->disposition), p->restarts,
                   p->sig.delivered);
      rc = 1;
    } else if (p->exit_kind == lfi::runtime::ExitKind::kExited) {
      if (p->exit_status != 0) {
        // A nonzero exit after a recovered fault still reports how the
        // fault was resolved, so operators can tell "crashed and
        // recovered" from "plain error exit".
        if (p->disposition != lfi::runtime::Disposition::kNone) {
          std::fprintf(stderr,
                       "lfi-run: %s: exit %d [disposition %s, restarts %u, "
                       "signals delivered %u%s%s]\n",
                       labels[k].c_str(), p->exit_status,
                       lfi::runtime::DispositionName(p->disposition),
                       p->restarts, p->sig.delivered,
                       p->fault_detail.empty() ? "" : ", last fault: ",
                       p->fault_detail.c_str());
        }
        rc = p->exit_status;
      }
    }
  }
  if (leftover != 0) {
    std::fprintf(stderr, "lfi-run: %d process(es) deadlocked\n", leftover);
    rc = 1;
  }
  return EmitFooter(rt, sink, cfg, want_stats, trace_path, rc);
}
