// lfi-verify: standalone static verifier (Section 5.2).
//
// Reads an LFI ELF executable, runs the single-linear-pass verifier over
// every executable segment, and reports accept/reject plus throughput.
//
// Usage: lfi-verify [--no-loads] [--threads=N] prog.elf
//
// --threads=N shards the verification of each segment over N worker
// threads (0 = hardware concurrency) via VerifyParallel; the verdict is
// bit-identical to the serial pass.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include "elf/elf.h"
#include "verifier/verifier.h"

int main(int argc, char** argv) {
  lfi::verifier::VerifyOptions opts;
  const char* path = nullptr;
  bool parallel = false;
  unsigned nthreads = 0;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--no-loads") == 0) {
      opts.check_loads = false;
    } else if (std::strncmp(argv[k], "--threads=", 10) == 0) {
      parallel = true;
      nthreads = static_cast<unsigned>(
          std::strtoul(argv[k] + 10, nullptr, 10));
    } else {
      path = argv[k];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: lfi-verify [--no-loads] [--threads=N] prog.elf\n");
    return 2;
  }
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "lfi-verify: cannot open %s\n", path);
    return 2;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                             std::istreambuf_iterator<char>());
  auto img = lfi::elf::Read({bytes.data(), bytes.size()});
  if (!img) {
    std::fprintf(stderr, "lfi-verify: %s\n", img.error().c_str());
    return 2;
  }
  uint64_t total_bytes = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& seg : img->segments) {
    if (!seg.exec) continue;
    total_bytes += seg.data.size();
    auto r = parallel
                 ? lfi::verifier::VerifyParallel(
                       {seg.data.data(), seg.data.size()}, opts, nthreads)
                 : lfi::verifier::Verify({seg.data.data(), seg.data.size()},
                                         opts);
    if (!r.ok) {
      std::printf("REJECT (%s) at text offset 0x%llx: %s\n",
                  lfi::verifier::FailKindName(r.kind),
                  static_cast<unsigned long long>(r.fail_offset),
                  r.reason.c_str());
      return 1;
    }
  }
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start).count();
  std::printf("OK: %llu bytes of text verified in %.3f ms (%.1f MB/s)\n",
              static_cast<unsigned long long>(total_bytes), elapsed * 1e3,
              elapsed > 0 ? total_bytes / elapsed / 1e6 : 0.0);
  return 0;
}
