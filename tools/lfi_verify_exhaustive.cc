// lfi-verify-exhaustive: model-based exhaustive validation of the
// verifier's per-class accept/reject decisions (docs/VERIFIER.md).
//
// Enumerates every swept encoding of every allowlisted instruction class
// (arch/fields.cc), compares the symbolic model's predicted verdict with
// the real verifier, then cross-validates a stratified sample of the
// accepted encodings against the emulator. Exit 0 only if every class
// sweeps clean and the emulator agrees with every effect prediction.
//
// Usage: lfi-verify-exhaustive [--list] [--class=NAME] [--shard=I/N]
//                              [--stride=N] [--emu-samples=N]
//                              [--artifact=PATH] [--no-loads] [--no-llsc]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "arch/fields.h"
#include "verify_model/crossval.h"
#include "verify_model/sweep.h"

namespace vm = lfi::verify_model;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: lfi-verify-exhaustive [--list] [--class=NAME] "
               "[--shard=I/N] [--stride=N]\n"
               "                             [--emu-samples=N] "
               "[--artifact=PATH] [--no-loads] [--no-llsc]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  vm::SweepOptions opts;
  size_t emu_samples = 48;
  const char* only_class = nullptr;
  const char* artifact = nullptr;
  bool list = false;

  for (int k = 1; k < argc; ++k) {
    const char* a = argv[k];
    if (std::strcmp(a, "--list") == 0) {
      list = true;
    } else if (std::strncmp(a, "--class=", 8) == 0) {
      only_class = a + 8;
    } else if (std::strncmp(a, "--shard=", 8) == 0) {
      unsigned i = 0, n = 1;
      if (std::sscanf(a + 8, "%u/%u", &i, &n) != 2 || n == 0 || i >= n) {
        return Usage();
      }
      opts.shard_index = i;
      opts.shard_count = n;
    } else if (std::strncmp(a, "--stride=", 9) == 0) {
      opts.stride = std::strtoull(a + 9, nullptr, 10);
      if (opts.stride == 0) return Usage();
    } else if (std::strncmp(a, "--emu-samples=", 14) == 0) {
      emu_samples = std::strtoull(a + 14, nullptr, 10);
    } else if (std::strncmp(a, "--artifact=", 11) == 0) {
      artifact = a + 11;
    } else if (std::strcmp(a, "--no-loads") == 0) {
      opts.verify.check_loads = false;
    } else if (std::strcmp(a, "--no-llsc") == 0) {
      opts.verify.allow_llsc = false;
    } else {
      return Usage();
    }
  }

  if (list) {
    uint64_t total = 0;
    for (const auto& cls : lfi::arch::AllEncClasses()) {
      std::printf("%-16s %12" PRIu64 " encodings\n", cls.name,
                  cls.EncodingCount());
      total += cls.EncodingCount();
    }
    std::printf("%-16s %12" PRIu64 " encodings\n", "TOTAL", total);
    return 0;
  }

  std::vector<vm::SweepResult> results;
  uint64_t mismatches = 0, checked = 0, accepted = 0;
  for (const auto& cls : lfi::arch::AllEncClasses()) {
    if (only_class != nullptr && std::strcmp(cls.name, only_class) != 0) {
      continue;
    }
    vm::SweepResult r = vm::SweepClass(cls, opts);
    std::printf("%-16s %12" PRIu64 " checked  %10" PRIu64 " accepted  %6" PRIu64
                " mismatches  %7.2fs\n",
                r.class_name.c_str(), r.checked, r.accepted, r.mismatches,
                r.seconds);
    std::fflush(stdout);
    mismatches += r.mismatches;
    checked += r.checked;
    accepted += r.accepted;
    results.push_back(std::move(r));
  }
  if (only_class != nullptr && results.empty()) {
    std::fprintf(stderr, "lfi-verify-exhaustive: unknown class %s\n",
                 only_class);
    return 2;
  }

  vm::CrossvalOptions copts;
  copts.max_samples_per_class = emu_samples;
  vm::CrossvalResult cv;
  if (emu_samples > 0) {
    cv = vm::CrossValidate(results, copts);
    std::printf("emu crossval: %" PRIu64 " executed (%" PRIu64 " branches, %"
                PRIu64 " faults), %zu disagreements\n",
                cv.executed, cv.branches, cv.faulted, cv.failures.size());
  }

  const bool bad = mismatches > 0 || !cv.ok();
  if (bad && artifact != nullptr) {
    std::ofstream out(artifact);
    for (const auto& r : results) {
      for (const auto& m : r.recorded) {
        out << r.class_name << " word=0x" << std::hex << m.word << std::dec
            << (m.with_suffix ? " (with suffix)" : "") << " " << m.detail
            << "\n";
      }
    }
    for (const auto& f : cv.failures) {
      out << f.class_name << " word=0x" << std::hex << f.word << std::dec
          << " emu: " << f.detail << "\n";
    }
  }
  for (const auto& r : results) {
    for (const auto& m : r.recorded) {
      std::fprintf(stderr, "MISMATCH %s word=0x%08X%s %s\n",
                   r.class_name.c_str(), m.word,
                   m.with_suffix ? " (with suffix)" : "", m.detail.c_str());
    }
  }
  for (const auto& f : cv.failures) {
    std::fprintf(stderr, "EMU-DISAGREE %s word=0x%08X %s\n",
                 f.class_name.c_str(), f.word, f.detail.c_str());
  }

  std::printf("%s: %" PRIu64 " encodings checked, %" PRIu64 " accepted, %"
              PRIu64 " mismatches\n",
              bad ? "FAIL" : "OK", checked, accepted, mismatches);
  return bad ? 1 : 0;
}
